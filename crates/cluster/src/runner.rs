//! The experiment runner: one simulation per (system, size, testbed) point,
//! run in parallel across OS threads (each `Sim` is single-threaded and
//! `!Send`, so parallelism lives *across* runs).

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use rmr_core::cluster::Cluster;
use rmr_core::{run_job, JobResult};
use rmr_hdfs::HdfsConfig;
use rmr_workloads::{randomwriter, sort_spec, teragen, terasort_spec};

use crate::testbed::{tuned_block_size, tuned_conf, Bench, System, Testbed};

/// One experiment point.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment/figure id (e.g. "fig4a"), echoed into the record.
    pub id: String,
    /// Which benchmark.
    pub bench: Bench,
    /// Which system.
    pub system: System,
    /// Cluster shape.
    pub testbed: Testbed,
    /// Dataset size in gigabytes (the x-axis of the paper's figures).
    pub data_gb: f64,
    /// Simulation seed.
    pub seed: u64,
    /// Override the tuned HDFS block size (tuning sweeps).
    pub block_size_override: Option<u64>,
    /// Override the OSU-IB packet byte budget (tuning sweeps).
    pub osu_packet_override: Option<u64>,
}

impl Experiment {
    /// A standard experiment point with no tuning overrides.
    pub fn new(
        id: impl Into<String>,
        bench: Bench,
        system: System,
        testbed: Testbed,
        data_gb: f64,
        seed: u64,
    ) -> Experiment {
        Experiment {
            id: id.into(),
            bench,
            system,
            testbed,
            data_gb,
            seed,
            block_size_override: None,
            osu_packet_override: None,
        }
    }
}

/// One row of results, serialisable for EXPERIMENTS.md regeneration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Experiment id.
    pub id: String,
    /// Benchmark label.
    pub bench: String,
    /// System label.
    pub system: String,
    /// Worker count.
    pub nodes: usize,
    /// Disks per node.
    pub disks: usize,
    /// SSD data store?
    pub ssd: bool,
    /// Dataset size, GB.
    pub data_gb: f64,
    /// Job execution time, seconds — the paper's y-axis.
    pub duration_s: f64,
    /// Time the map wave finished.
    pub map_phase_end_s: f64,
    /// Map task count.
    pub maps: usize,
    /// Reduce task count.
    pub reduces: usize,
    /// Bytes shuffled.
    pub shuffled_bytes: u64,
    /// PrefetchCache hit rate (0 when caching disabled).
    pub cache_hit_rate: f64,
}

impl RunRecord {
    fn from_result(exp: &Experiment, res: &JobResult) -> RunRecord {
        let lookups = res.cache_hits + res.cache_misses;
        RunRecord {
            id: exp.id.clone(),
            bench: exp.bench.label().to_string(),
            system: exp.system.label().to_string(),
            nodes: exp.testbed.nodes,
            disks: exp.testbed.disks,
            ssd: exp.testbed.ssd,
            data_gb: exp.data_gb,
            duration_s: res.duration_s,
            map_phase_end_s: res.map_phase_end_s,
            maps: res.maps,
            reduces: res.reduces,
            shuffled_bytes: res.shuffled_bytes,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                res.cache_hits as f64 / lookups as f64
            },
        }
    }
}

/// Runs one experiment point (synthetic data plane) to completion inside
/// its own simulation.
pub fn run_experiment(exp: &Experiment) -> RunRecord {
    let sim = rmr_des::Sim::new(exp.seed);
    let block_size = exp
        .block_size_override
        .unwrap_or_else(|| tuned_block_size(exp.system, exp.bench));
    let cluster = Cluster::build(
        &sim,
        exp.system.fabric(),
        &exp.testbed.node_specs(),
        HdfsConfig {
            block_size,
            replication: 1,
            packet_size: 4 << 20,
        },
    );
    let mut conf = tuned_conf(exp.system, exp.bench, &exp.testbed);
    if let Some(p) = exp.osu_packet_override {
        conf.osu_packet_bytes = p;
    }
    let bytes = (exp.data_gb * (1u64 << 30) as f64) as u64;
    let result: Rc<RefCell<Option<JobResult>>> = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    let c2 = cluster.clone();
    let bench = exp.bench;
    sim.spawn(async move {
        let spec = match bench {
            Bench::TeraSort => {
                teragen(&c2, "/bench/in", bytes, false).await;
                terasort_spec("/bench/in", "/bench/out")
            }
            Bench::Sort => {
                randomwriter(&c2, "/bench/in", bytes, false).await;
                sort_spec("/bench/in", "/bench/out")
            }
        };
        let res = run_job(&c2, conf, spec).await;
        *r2.borrow_mut() = Some(res);
    })
    .detach();
    sim.run();
    let res = result
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("experiment {} hung", exp.id));
    RunRecord::from_result(exp, &res)
}

/// Runs experiments in parallel across `threads` OS threads, preserving
/// input order in the output.
pub fn run_all(experiments: &[Experiment], threads: usize) -> Vec<RunRecord> {
    let threads = threads.max(1);
    let n = experiments.len();
    let results: Vec<parking_lot::Mutex<Option<RunRecord>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let rec = run_experiment(&experiments[i]);
                eprintln!(
                    "  [{}] {} {} {}GB n{} d{} → {:.0}s",
                    experiments[i].id,
                    rec.bench,
                    rec.system,
                    rec.data_gb,
                    rec.nodes,
                    rec.disks,
                    rec.duration_s
                );
                *results[i].lock() = Some(rec);
            });
        }
    })
    .expect("experiment thread panicked");
    results
        .into_iter()
        .map(|m| m.into_inner().expect("missing result"))
        .collect()
}

/// Formats records as an aligned text table grouped the way the paper's
/// figures are (one row per size, one column per system).
pub fn format_table(records: &[RunRecord]) -> String {
    use std::collections::BTreeMap;
    let mut systems: Vec<String> = Vec::new();
    for r in records {
        let key = format!("{} ({}d{})", r.system, if r.ssd { "ssd " } else { "" }, r.disks);
        if !systems.contains(&key) {
            systems.push(key);
        }
    }
    let mut rows: BTreeMap<u64, BTreeMap<String, f64>> = BTreeMap::new();
    for r in records {
        let key = format!("{} ({}d{})", r.system, if r.ssd { "ssd " } else { "" }, r.disks);
        rows.entry((r.data_gb * 1000.0) as u64)
            .or_default()
            .insert(key, r.duration_s);
    }
    let mut out = String::new();
    out.push_str(&format!("{:>10}", "Size(GB)"));
    for s in &systems {
        out.push_str(&format!(" | {s:>28}"));
    }
    out.push('\n');
    for (gb, cols) in rows {
        out.push_str(&format!("{:>10.0}", gb as f64 / 1000.0));
        for s in &systems {
            match cols.get(s) {
                Some(v) => out.push_str(&format!(" | {v:>26.0}s ")),
                None => out.push_str(&format!(" | {:>28}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_exp(system: System) -> Experiment {
        Experiment::new("test", Bench::TeraSort, system, Testbed::compute(2, 1), 0.5, 1)
    }

    #[test]
    fn single_experiment_completes() {
        let rec = run_experiment(&tiny_exp(System::OsuIb));
        assert!(rec.duration_s > 0.0);
        assert!(rec.maps > 0);
        assert_eq!(rec.reduces, 8);
        assert!(rec.cache_hit_rate > 0.0, "caching enabled → hits expected");
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let exps = vec![tiny_exp(System::IpoIb), tiny_exp(System::OsuIb)];
        let recs = run_all(&exps, 2);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].system, System::IpoIb.label());
        assert_eq!(recs[1].system, System::OsuIb.label());
    }

    #[test]
    fn records_serialize_to_json() {
        let rec = run_experiment(&tiny_exp(System::GigE1));
        let json = serde_json::to_string(&rec).unwrap();
        let back: RunRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.system, rec.system);
        assert_eq!(back.duration_s, rec.duration_s);
    }

    #[test]
    fn format_table_lists_all_systems() {
        let recs = run_all(
            &[tiny_exp(System::IpoIb), tiny_exp(System::OsuIb)],
            2,
        );
        let table = format_table(&recs);
        assert!(table.contains("IPoIB"));
        assert!(table.contains("OSU-IB"));
    }
}
