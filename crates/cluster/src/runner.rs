//! The experiment runner: one simulation per (system, size, testbed) point,
//! run in parallel across OS threads (each `Sim` is single-threaded and
//! `!Send`, so parallelism lives *across* runs).

use std::cell::RefCell;
use std::rc::Rc;

use rmr_core::cluster::Cluster;
use rmr_core::{run_job, JobResult, Runtime, SchedulePolicy};
use rmr_hdfs::HdfsConfig;
use rmr_workloads::{randomwriter, sort_spec, teragen, terasort_spec};

use crate::testbed::{tuned_block_size, tuned_conf, Bench, System, Testbed};

/// One experiment point.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Experiment/figure id (e.g. "fig4a"), echoed into the record.
    pub id: String,
    /// Which benchmark.
    pub bench: Bench,
    /// Which system.
    pub system: System,
    /// Cluster shape.
    pub testbed: Testbed,
    /// Dataset size in gigabytes (the x-axis of the paper's figures).
    pub data_gb: f64,
    /// Simulation seed.
    pub seed: u64,
    /// Override the tuned HDFS block size (tuning sweeps).
    pub block_size_override: Option<u64>,
    /// Override the OSU-IB packet byte budget (tuning sweeps).
    pub osu_packet_override: Option<u64>,
}

impl Experiment {
    /// A standard experiment point with no tuning overrides.
    pub fn new(
        id: impl Into<String>,
        bench: Bench,
        system: System,
        testbed: Testbed,
        data_gb: f64,
        seed: u64,
    ) -> Experiment {
        Experiment {
            id: id.into(),
            bench,
            system,
            testbed,
            data_gb,
            seed,
            block_size_override: None,
            osu_packet_override: None,
        }
    }
}

/// Current [`RunRecord`] wire-format version, emitted as the `schema`
/// field. Records without the field (pre-versioning) parse as schema 1.
/// The full field catalogue lives in DESIGN.md §"RunRecord schema".
pub const RUN_RECORD_SCHEMA: u32 = 2;

/// One row of results, serialisable for EXPERIMENTS.md regeneration.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Wire-format version of this record (see [`RUN_RECORD_SCHEMA`]).
    pub schema: u32,
    /// Experiment id.
    pub id: String,
    /// Benchmark label.
    pub bench: String,
    /// System label.
    pub system: String,
    /// Worker count.
    pub nodes: usize,
    /// Disks per node.
    pub disks: usize,
    /// SSD data store?
    pub ssd: bool,
    /// Dataset size, GB.
    pub data_gb: f64,
    /// Job execution time, seconds — the paper's y-axis.
    pub duration_s: f64,
    /// Time the map wave finished.
    pub map_phase_end_s: f64,
    /// Map task count.
    pub maps: usize,
    /// Reduce task count.
    pub reduces: usize,
    /// Bytes shuffled.
    pub shuffled_bytes: u64,
    /// PrefetchCache hit rate (0 when caching disabled).
    pub cache_hit_rate: f64,
    /// Map attempts that failed and were re-executed.
    pub failed_maps: usize,
    /// Reduce attempts that failed and were re-executed.
    pub failed_reduces: usize,
    /// Seconds between job submission and its first launched attempt.
    pub queue_wait_s: f64,
    /// Fraction of the cluster's slot-seconds this job occupied while active.
    pub slot_occupancy: f64,
}

impl RunRecord {
    /// One JSON object (hand-rolled: the workspace stays serde-free, same
    /// convention as `rmr_core::timeline`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":{},\"id\":{},\"bench\":{},\"system\":{},\"nodes\":{},\"disks\":{},\
             \"ssd\":{},\"data_gb\":{},\"duration_s\":{},\"map_phase_end_s\":{},\
             \"maps\":{},\"reduces\":{},\"shuffled_bytes\":{},\"cache_hit_rate\":{},\
             \"failed_maps\":{},\"failed_reduces\":{},\"queue_wait_s\":{},\
             \"slot_occupancy\":{}}}",
            self.schema,
            json_str(&self.id),
            json_str(&self.bench),
            json_str(&self.system),
            self.nodes,
            self.disks,
            self.ssd,
            self.data_gb,
            self.duration_s,
            self.map_phase_end_s,
            self.maps,
            self.reduces,
            self.shuffled_bytes,
            self.cache_hit_rate,
            self.failed_maps,
            self.failed_reduces,
            self.queue_wait_s,
            self.slot_occupancy,
        )
    }

    /// Parses a record produced by [`RunRecord::to_json`]. Field order is
    /// free; unknown keys are ignored; missing keys fall back to defaults.
    pub fn from_json(json: &str) -> Result<RunRecord, String> {
        let mut rec = RunRecord {
            schema: 1, // pre-versioning records carry no field
            id: String::new(),
            bench: String::new(),
            system: String::new(),
            nodes: 0,
            disks: 0,
            ssd: false,
            data_gb: 0.0,
            duration_s: 0.0,
            map_phase_end_s: 0.0,
            maps: 0,
            reduces: 0,
            shuffled_bytes: 0,
            cache_hit_rate: 0.0,
            failed_maps: 0,
            failed_reduces: 0,
            queue_wait_s: 0.0,
            slot_occupancy: 0.0,
        };
        for (key, value) in json_fields(json)? {
            match key.as_str() {
                "schema" => rec.schema = value.into_number()? as u32,
                "id" => rec.id = value.into_string()?,
                "bench" => rec.bench = value.into_string()?,
                "system" => rec.system = value.into_string()?,
                "nodes" => rec.nodes = value.into_number()? as usize,
                "disks" => rec.disks = value.into_number()? as usize,
                "ssd" => rec.ssd = value.into_bool()?,
                "data_gb" => rec.data_gb = value.into_number()?,
                "duration_s" => rec.duration_s = value.into_number()?,
                "map_phase_end_s" => rec.map_phase_end_s = value.into_number()?,
                "maps" => rec.maps = value.into_number()? as usize,
                "reduces" => rec.reduces = value.into_number()? as usize,
                "shuffled_bytes" => rec.shuffled_bytes = value.into_number()? as u64,
                "cache_hit_rate" => rec.cache_hit_rate = value.into_number()?,
                "failed_maps" => rec.failed_maps = value.into_number()? as usize,
                "failed_reduces" => rec.failed_reduces = value.into_number()? as usize,
                "queue_wait_s" => rec.queue_wait_s = value.into_number()?,
                "slot_occupancy" => rec.slot_occupancy = value.into_number()?,
                _ => {}
            }
        }
        Ok(rec)
    }

    fn from_result(exp: &Experiment, res: &JobResult) -> RunRecord {
        let lookups = res.cache_hits + res.cache_misses;
        RunRecord {
            schema: RUN_RECORD_SCHEMA,
            id: exp.id.clone(),
            bench: exp.bench.label().to_string(),
            system: exp.system.label().to_string(),
            nodes: exp.testbed.nodes,
            disks: exp.testbed.disks,
            ssd: exp.testbed.ssd,
            data_gb: exp.data_gb,
            duration_s: res.duration_s,
            map_phase_end_s: res.map_phase_end_s,
            maps: res.maps,
            reduces: res.reduces,
            shuffled_bytes: res.shuffled_bytes,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                res.cache_hits as f64 / lookups as f64
            },
            failed_maps: res.failed_map_attempts,
            failed_reduces: res.failed_reduce_attempts,
            queue_wait_s: res.queue_wait_s,
            slot_occupancy: res.slot_occupancy,
        }
    }
}

/// Escapes a string into a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A scalar value from a flat JSON object.
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
}

impl JsonValue {
    fn into_string(self) -> Result<String, String> {
        match self {
            JsonValue::Str(s) => Ok(s),
            _ => Err("expected string".into()),
        }
    }
    fn into_number(self) -> Result<f64, String> {
        match self {
            JsonValue::Num(n) => Ok(n),
            _ => Err("expected number".into()),
        }
    }
    fn into_bool(self) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(b),
            _ => Err("expected bool".into()),
        }
    }
}

/// Parses a flat `{"key":scalar,...}` object into (key, value) pairs.
fn json_fields(json: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = json.chars().peekable();
    let mut fields = Vec::new();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    let parse_string =
        |chars: &mut std::iter::Peekable<std::str::Chars>| -> Result<String, String> {
            if chars.next() != Some('"') {
                return Err("expected '\"'".into());
            }
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => return Ok(s),
                    Some('\\') => match chars.next() {
                        Some('"') => s.push('"'),
                        Some('\\') => s.push('\\'),
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some('u') => {
                            let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            s.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some(c) => s.push(c),
                    None => return Err("unterminated string".into()),
                }
            }
        };
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => break,
            Some('"') => {}
            other => return Err(format!("expected key, found {other:?}")),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err("expected ':'".into());
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some('t') | Some('f') => {
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => JsonValue::Bool(true),
                    "false" => JsonValue::Bool(false),
                    w => return Err(format!("bad literal {w:?}")),
                }
            }
            _ => {
                let num: String = std::iter::from_fn(|| {
                    chars.next_if(|c| c.is_ascii_digit() || "+-.eE".contains(*c))
                })
                .collect();
                JsonValue::Num(
                    num.parse()
                        .map_err(|e| format!("bad number {num:?}: {e}"))?,
                )
            }
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.peek() {
            Some(',') => {
                chars.next();
            }
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    Ok(fields)
}

/// Runs one experiment point (synthetic data plane) to completion inside
/// its own simulation.
pub fn run_experiment(exp: &Experiment) -> RunRecord {
    run_experiment_traced(exp).0
}

/// [`run_experiment`] plus the simulation's replay-identity trace hash —
/// the determinism fingerprint the sweep gates compare across thread
/// counts and topologies.
pub fn run_experiment_traced(exp: &Experiment) -> (RunRecord, u64) {
    let sim = rmr_des::Sim::new(exp.seed);
    let block_size = exp
        .block_size_override
        .unwrap_or_else(|| tuned_block_size(exp.system, exp.bench));
    let cluster = Cluster::build_with_topology(
        &sim,
        exp.system.fabric(),
        exp.testbed.topology,
        &exp.testbed.node_specs(),
        HdfsConfig {
            block_size,
            replication: 1,
            packet_size: 4 << 20,
        },
    );
    let mut conf = tuned_conf(exp.system, exp.bench, &exp.testbed);
    if let Some(p) = exp.osu_packet_override {
        conf.osu_packet_bytes = p;
    }
    let bytes = (exp.data_gb * (1u64 << 30) as f64) as u64;
    let result: Rc<RefCell<Option<JobResult>>> = Rc::new(RefCell::new(None));
    let r2 = Rc::clone(&result);
    let c2 = cluster.clone();
    let bench = exp.bench;
    sim.spawn_named("experiment-driver", async move {
        let spec = match bench {
            Bench::TeraSort => {
                teragen(&c2, "/bench/in", bytes, false).await;
                terasort_spec("/bench/in", "/bench/out")
            }
            Bench::Sort => {
                randomwriter(&c2, "/bench/in", bytes, false).await;
                sort_spec("/bench/in", "/bench/out")
            }
        };
        let res = run_job(&c2, conf, spec).await;
        *r2.borrow_mut() = Some(res);
    })
    .detach();
    sim.run();
    let res = result
        .borrow_mut()
        .take()
        .unwrap_or_else(|| panic!("experiment {} hung", exp.id));
    (RunRecord::from_result(exp, &res), sim.trace_hash())
}

/// A multi-job experiment point: `jobs` identical TeraSort jobs through one
/// persistent runtime, either submitted all at once (concurrent, the slots
/// are shared) or joined one after another (sequential baseline).
#[derive(Debug, Clone)]
pub struct MultiJobExperiment {
    /// Experiment id, echoed into each per-job record as `{id}-j{n}`.
    pub id: String,
    /// Which system.
    pub system: System,
    /// Cluster shape.
    pub testbed: Testbed,
    /// How many jobs to submit.
    pub jobs: usize,
    /// Dataset size per job, GB.
    pub data_gb_per_job: f64,
    /// How the control plane orders jobs competing for slots.
    pub policy: SchedulePolicy,
    /// Submit everything up front (true) or join each job before the next.
    pub concurrent: bool,
    /// Simulation seed.
    pub seed: u64,
}

/// Runs a multi-job experiment; returns one record per job, in submission
/// order, with per-job queue wait and slot occupancy filled in.
pub fn run_multijob(exp: &MultiJobExperiment) -> Vec<RunRecord> {
    let sim = rmr_des::Sim::new(exp.seed);
    let cluster = Cluster::build_with_topology(
        &sim,
        exp.system.fabric(),
        exp.testbed.topology,
        &exp.testbed.node_specs(),
        HdfsConfig {
            block_size: tuned_block_size(exp.system, Bench::TeraSort),
            replication: 1,
            packet_size: 4 << 20,
        },
    );
    let conf = tuned_conf(exp.system, Bench::TeraSort, &exp.testbed);
    let bytes = (exp.data_gb_per_job * (1u64 << 30) as f64) as u64;
    let results: Rc<RefCell<Vec<JobResult>>> = Rc::new(RefCell::new(Vec::new()));
    let r2 = Rc::clone(&results);
    let c2 = cluster.clone();
    let jobs = exp.jobs;
    let concurrent = exp.concurrent;
    let policy = exp.policy.clone();
    sim.spawn_named("multijob-driver", async move {
        for i in 0..jobs {
            teragen(&c2, &format!("/mj/in{i}"), bytes, false).await;
        }
        let rt = Runtime::with_policy(&c2, conf.clone(), policy);
        if concurrent {
            let ids: Vec<_> = (0..jobs)
                .map(|i| {
                    rt.submit(
                        conf.clone(),
                        terasort_spec(&format!("/mj/in{i}"), &format!("/mj/out{i}")),
                    )
                })
                .collect();
            for id in ids {
                let res = rt.join(id).await;
                r2.borrow_mut().push(res);
            }
        } else {
            for i in 0..jobs {
                let id = rt.submit(
                    conf.clone(),
                    terasort_spec(&format!("/mj/in{i}"), &format!("/mj/out{i}")),
                );
                let res = rt.join(id).await;
                r2.borrow_mut().push(res);
            }
        }
    })
    .detach();
    sim.run();
    let results = results.borrow();
    assert_eq!(results.len(), exp.jobs, "multijob {} hung", exp.id);
    results
        .iter()
        .enumerate()
        .map(|(i, res)| {
            let point = Experiment::new(
                format!("{}-j{i}", exp.id),
                Bench::TeraSort,
                exp.system,
                exp.testbed.clone(),
                exp.data_gb_per_job,
                exp.seed,
            );
            RunRecord::from_result(&point, res)
        })
        .collect()
}

/// Runs experiments in parallel across `threads` OS threads, preserving
/// input order in the output.
pub fn run_all(experiments: &[Experiment], threads: usize) -> Vec<RunRecord> {
    let threads = threads.max(1);
    let n = experiments.len();
    let results: Vec<std::sync::Mutex<Option<RunRecord>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    // Each worker owns a whole single-threaded Sim; threads never share sim
    // state, and results are written to per-experiment slots, so replay
    // stays bit-identical at any thread count.
    // simcheck: allow(thread-spawn)
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if i >= n {
                    break;
                }
                let rec = run_experiment(&experiments[i]);
                eprintln!(
                    "  [{}] {} {} {}GB n{} d{} → {:.0}s",
                    experiments[i].id,
                    rec.bench,
                    rec.system,
                    rec.data_gb,
                    rec.nodes,
                    rec.disks,
                    rec.duration_s
                );
                *results[i].lock().unwrap() = Some(rec);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing result"))
        .collect()
}

/// Formats records as an aligned text table grouped the way the paper's
/// figures are (one row per size, one column per system).
pub fn format_table(records: &[RunRecord]) -> String {
    use std::collections::BTreeMap;
    let mut systems: Vec<String> = Vec::new();
    for r in records {
        let key = format!(
            "{} ({}d{})",
            r.system,
            if r.ssd { "ssd " } else { "" },
            r.disks
        );
        if !systems.contains(&key) {
            systems.push(key);
        }
    }
    let mut rows: BTreeMap<u64, BTreeMap<String, f64>> = BTreeMap::new();
    for r in records {
        let key = format!(
            "{} ({}d{})",
            r.system,
            if r.ssd { "ssd " } else { "" },
            r.disks
        );
        rows.entry((r.data_gb * 1000.0) as u64)
            .or_default()
            .insert(key, r.duration_s);
    }
    let mut out = String::new();
    out.push_str(&format!("{:>10}", "Size(GB)"));
    for s in &systems {
        out.push_str(&format!(" | {s:>28}"));
    }
    out.push('\n');
    for (gb, cols) in rows {
        out.push_str(&format!("{:>10.0}", gb as f64 / 1000.0));
        for s in &systems {
            match cols.get(s) {
                Some(v) => out.push_str(&format!(" | {v:>26.0}s ")),
                None => out.push_str(&format!(" | {:>28}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_exp(system: System) -> Experiment {
        Experiment::new(
            "test",
            Bench::TeraSort,
            system,
            Testbed::compute(2, 1),
            0.5,
            1,
        )
    }

    #[test]
    fn single_experiment_completes() {
        let rec = run_experiment(&tiny_exp(System::OsuIb));
        assert!(rec.duration_s > 0.0);
        assert!(rec.maps > 0);
        assert_eq!(rec.reduces, 8);
        assert!(rec.cache_hit_rate > 0.0, "caching enabled → hits expected");
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let exps = vec![tiny_exp(System::IpoIb), tiny_exp(System::OsuIb)];
        let recs = run_all(&exps, 2);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].system, System::IpoIb.label());
        assert_eq!(recs[1].system, System::OsuIb.label());
    }

    #[test]
    fn records_serialize_to_json() {
        let rec = run_experiment(&tiny_exp(System::GigE1));
        let json = rec.to_json();
        let back = RunRecord::from_json(&json).unwrap();
        assert_eq!(back.system, rec.system);
        assert_eq!(back.duration_s, rec.duration_s);
    }

    #[test]
    fn json_round_trips_escapes_and_fields() {
        let rec = RunRecord {
            schema: RUN_RECORD_SCHEMA,
            id: "fig\"4a\"\n".to_string(),
            bench: "TeraSort".to_string(),
            system: "OSU-IB".to_string(),
            nodes: 8,
            disks: 2,
            ssd: true,
            data_gb: 12.5,
            duration_s: 98.25,
            map_phase_end_s: 40.5,
            maps: 160,
            reduces: 64,
            shuffled_bytes: 1 << 33,
            cache_hit_rate: 0.75,
            failed_maps: 2,
            failed_reduces: 1,
            queue_wait_s: 3.25,
            slot_occupancy: 0.625,
        };
        let back = RunRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back.schema, RUN_RECORD_SCHEMA);
        assert_eq!(back.id, rec.id);
        assert_eq!(back.ssd, rec.ssd);
        assert_eq!(back.shuffled_bytes, rec.shuffled_bytes);
        assert_eq!(back.cache_hit_rate, rec.cache_hit_rate);
        assert_eq!(back.failed_maps, 2);
        assert_eq!(back.failed_reduces, 1);
        assert_eq!(back.queue_wait_s, rec.queue_wait_s);
        assert_eq!(back.slot_occupancy, rec.slot_occupancy);
    }

    #[test]
    fn records_without_schema_field_parse_as_v1() {
        let legacy = r#"{"id":"old","bench":"Sort","system":"IPoIB","duration_s":42}"#;
        let rec = RunRecord::from_json(legacy).unwrap();
        assert_eq!(rec.schema, 1);
        assert_eq!(rec.id, "old");
        assert_eq!(rec.duration_s, 42.0);
    }

    #[test]
    fn concurrent_multijob_shares_the_cluster() {
        let exp = MultiJobExperiment {
            id: "mj".to_string(),
            system: System::OsuIb,
            testbed: Testbed::compute(2, 1),
            jobs: 2,
            data_gb_per_job: 0.25,
            policy: SchedulePolicy::Fifo,
            concurrent: true,
            seed: 7,
        };
        let recs = run_multijob(&exp);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "mj-j0");
        assert_eq!(recs[1].id, "mj-j1");
        for r in &recs {
            assert!(r.duration_s > 0.0);
            assert!(r.queue_wait_s >= 0.0);
            assert!(r.slot_occupancy > 0.0 && r.slot_occupancy <= 1.0);
        }
        // The sequential variant of the same point must take at least as
        // long end to end as the concurrent one (no slot sharing).
        let seq = run_multijob(&MultiJobExperiment {
            concurrent: false,
            ..exp
        });
        let seq_end: f64 = seq.iter().map(|r| r.duration_s).sum();
        let conc_last = recs.last().unwrap().duration_s;
        assert!(
            conc_last <= seq_end + 1e-6,
            "concurrent makespan {conc_last} vs sequential {seq_end}"
        );
    }

    #[test]
    fn format_table_lists_all_systems() {
        let recs = run_all(&[tiny_exp(System::IpoIb), tiny_exp(System::OsuIb)], 2);
        let table = format_table(&recs);
        assert!(table.contains("IPoIB"));
        assert!(table.contains("OSU-IB"));
    }
}
