//! A minimal recursive-descent JSON parser.
//!
//! The workspace is deliberately serde-free (offline container, vendored
//! shims only) and the flat key/value scanner in `rmr_cluster::runner` cannot
//! handle nested documents, so the Chrome-trace validator gets its own tiny
//! full parser. It accepts strict JSON, keeps object keys in insertion-free
//! `BTreeMap` order, and reports errors with a byte offset.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object member lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| format!("bad \\u at byte {}", self.pos))?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            // Surrogates are replaced; the exporter never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(
            "{\"a\":[1,2.5,-3e2],\"b\":{\"c\":\"hi\\n\\\"there\\\"\"},\"t\":true,\"n\":null}",
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("hi\n\"there\"")
        );
        assert_eq!(v.get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
