//! Chrome trace-event JSON export and schema validation.
//!
//! The exported document follows the Trace Event Format accepted by
//! `chrome://tracing` and Perfetto: `{"traceEvents": [...]}` where each
//! element is one of
//!
//! * `ph:"M"` metadata — `process_name` per node (pid = node index) and
//!   `thread_name` per lane (map lanes `tid = lane`, reduce lanes
//!   `tid = 100 + lane`);
//! * `ph:"X"` complete spans — one per task attempt, `ts`/`dur` in
//!   microseconds (fractional, exact: integer nanoseconds divided by 1000);
//! * `ph:"C"` counters — per-node pending queue depth from heartbeats;
//! * `ph:"i"` instants — job state transitions on a synthetic "jobs"
//!   process (`pid = JOBS_PID`).
//!
//! Timestamps are derived from integer sim nanoseconds, so the exported
//! document is byte-identical across seeded runs.

use crate::event::{Ev, ObsEvent};
use crate::json::{parse, Json};
use crate::span::{assign_lanes, spans_from_events, Span};

/// Synthetic pid hosting job-lifecycle instant events.
pub const JOBS_PID: u64 = 999;

/// Reduce lanes are offset so map/reduce tracks sort apart within a node.
pub const REDUCE_TID_BASE: usize = 100;

fn us(t_ns: u64) -> String {
    // Exact microseconds with nanosecond resolution: 1234 ns → "1.234".
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

fn span_tid(s: &Span, lane: usize) -> usize {
    match s.kind {
        crate::event::TaskFlavor::Map => lane,
        crate::event::TaskFlavor::Reduce => REDUCE_TID_BASE + lane,
    }
}

/// Render the full event stream as a Chrome trace-event JSON document.
pub fn chrome_trace(events: &[ObsEvent]) -> String {
    let spans = spans_from_events(events);
    let lanes = assign_lanes(&spans);
    let mut rows: Vec<String> = Vec::new();

    // Metadata: name each node process and each lane thread we will emit.
    let mut tracks: Vec<(usize, usize)> = spans
        .iter()
        .zip(&lanes)
        .map(|(s, &lane)| (s.node, span_tid(s, lane)))
        .collect();
    tracks.sort_unstable();
    tracks.dedup();
    // Heartbeat counters reference nodes even when no attempt completed
    // there, so name the union of span nodes and heartbeat nodes.
    let mut nodes: std::collections::BTreeSet<usize> = tracks.iter().map(|&(n, _)| n).collect();
    for e in events {
        if let Ev::Heartbeat { node, .. } = &e.ev {
            nodes.insert(*node);
        }
    }
    for node in &nodes {
        rows.push(format!(
            "{{\"ph\":\"M\",\"pid\":{node},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"node{node}\"}}}}"
        ));
    }
    for (node, tid) in &tracks {
        let lane_name = if *tid >= REDUCE_TID_BASE {
            format!("reduce lane {}", tid - REDUCE_TID_BASE)
        } else {
            format!("map lane {tid}")
        };
        rows.push(format!(
            "{{\"ph\":\"M\",\"pid\":{node},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{lane_name}\"}}}}"
        ));
    }
    rows.push(format!(
        "{{\"ph\":\"M\",\"pid\":{JOBS_PID},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"jobs\"}}}}"
    ));

    // Spans: one X event per attempt.
    for (s, &lane) in spans.iter().zip(&lanes) {
        let start_ns = (s.start_s * 1e9).round() as u64;
        let dur_ns = ((s.end_s - s.start_s).max(0.0) * 1e9).round() as u64;
        rows.push(format!(
            "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"j{} {} {}\",\"cat\":\"{}\",\"args\":{{\"job\":{},\"idx\":{},\"outcome\":\"{}\"}}}}",
            s.node,
            span_tid(s, lane),
            us(start_ns),
            us(dur_ns),
            s.job,
            s.kind.as_str(),
            s.idx,
            s.kind.as_str(),
            s.job,
            s.idx,
            s.outcome.as_str()
        ));
    }

    // Counters and instants straight off the stream.
    for e in events {
        match &e.ev {
            Ev::Heartbeat {
                node,
                pending_maps,
                pending_reduces,
                ..
            } => {
                rows.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{},\"tid\":0,\"ts\":{},\"name\":\"queue depth\",\"args\":{{\"pending_maps\":{},\"pending_reduces\":{}}}}}",
                    node,
                    us(e.t_ns),
                    pending_maps,
                    pending_reduces
                ));
            }
            Ev::JobState { job, state } => {
                rows.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{},\"tid\":0,\"ts\":{},\"s\":\"g\",\"name\":\"j{} {}\",\"args\":{{\"job\":{},\"state\":\"{}\"}}}}",
                    JOBS_PID,
                    us(e.t_ns),
                    job,
                    state.as_str(),
                    job,
                    state.as_str()
                ));
            }
            _ => {}
        }
    }

    format!("{{\"traceEvents\":[\n{}\n]}}\n", rows.join(",\n"))
}

/// Summary of a validated trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCheck {
    pub n_events: usize,
    pub n_spans: usize,
    pub n_counters: usize,
    pub n_instants: usize,
    pub n_processes: usize,
}

/// Validate a Chrome trace document against the schema `chrome_trace` emits.
///
/// Checks: well-formed JSON; top-level `traceEvents` array; every element an
/// object with a known `ph`; `X` events carry numeric `ts`/`dur`, a `name`,
/// and pid/tid; every `X`/`C` pid has a `process_name` metadata record; spans
/// on the same (pid, tid) track never overlap.
pub fn validate_chrome_trace(doc: &str) -> Result<TraceCheck, String> {
    let root = parse(doc)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\"")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;

    let mut named_pids = std::collections::BTreeSet::new();
    let mut used_pids = std::collections::BTreeSet::new();
    let mut check = TraceCheck {
        n_events: events.len(),
        n_spans: 0,
        n_counters: 0,
        n_instants: 0,
        n_processes: 0,
    };
    // (pid, tid) → sorted list of (ts, ts+dur) for overlap detection.
    let mut tracks: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();

    for (i, e) in events.iter().enumerate() {
        let obj = e.as_obj().ok_or(format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i} missing \"ph\""))?;
        let pid = obj.get("pid").and_then(Json::as_num);
        match ph {
            "M" => {
                let name = obj
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("metadata event {i} missing name"))?;
                if name == "process_name" {
                    check.n_processes += 1;
                    named_pids.insert(pid.ok_or(format!("metadata event {i} missing pid"))? as u64);
                }
            }
            "X" => {
                check.n_spans += 1;
                let pid = pid.ok_or(format!("span {i} missing pid"))? as u64;
                let tid = obj
                    .get("tid")
                    .and_then(Json::as_num)
                    .ok_or(format!("span {i} missing tid"))? as u64;
                let ts = obj
                    .get("ts")
                    .and_then(Json::as_num)
                    .ok_or(format!("span {i} missing numeric ts"))?;
                let dur = obj
                    .get("dur")
                    .and_then(Json::as_num)
                    .ok_or(format!("span {i} missing numeric dur"))?;
                if dur < 0.0 {
                    return Err(format!("span {i} has negative dur"));
                }
                obj.get("name")
                    .and_then(Json::as_str)
                    .ok_or(format!("span {i} missing name"))?;
                used_pids.insert(pid);
                tracks.entry((pid, tid)).or_default().push((ts, ts + dur));
            }
            "C" => {
                check.n_counters += 1;
                used_pids.insert(pid.ok_or(format!("counter {i} missing pid"))? as u64);
                obj.get("args")
                    .and_then(|a| a.as_obj())
                    .ok_or(format!("counter {i} missing args object"))?;
            }
            "i" => {
                check.n_instants += 1;
                used_pids.insert(pid.ok_or(format!("instant {i} missing pid"))? as u64);
            }
            other => return Err(format!("event {i} has unknown ph \"{other}\"")),
        }
    }

    for pid in &used_pids {
        if !named_pids.contains(pid) {
            return Err(format!("pid {pid} has events but no process_name metadata"));
        }
    }
    for ((pid, tid), mut iv) in tracks {
        iv.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for w in iv.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(format!(
                    "overlapping spans on pid {pid} tid {tid}: [{}, {}) and [{}, {})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttemptOutcome, JobState, TaskFlavor};

    fn at(t_s: f64, ev: Ev) -> ObsEvent {
        ObsEvent {
            t_ns: (t_s * 1e9) as u64,
            ev,
        }
    }

    fn demo_events() -> Vec<ObsEvent> {
        vec![
            at(
                0.0,
                Ev::JobState {
                    job: 0,
                    state: JobState::Submitted,
                },
            ),
            at(
                0.5,
                Ev::AttemptStart {
                    node: 0,
                    job: 0,
                    kind: TaskFlavor::Map,
                    idx: 0,
                },
            ),
            at(
                0.6,
                Ev::AttemptStart {
                    node: 0,
                    job: 0,
                    kind: TaskFlavor::Map,
                    idx: 1,
                },
            ),
            at(
                1.0,
                Ev::Heartbeat {
                    node: 0,
                    active_jobs: 1,
                    pending_maps: 2,
                    pending_reduces: 1,
                    free_map_slots: 0,
                    free_reduce_slots: 1,
                },
            ),
            at(
                2.0,
                Ev::AttemptFinish {
                    node: 0,
                    job: 0,
                    kind: TaskFlavor::Map,
                    idx: 0,
                    outcome: AttemptOutcome::Completed,
                },
            ),
            at(
                2.5,
                Ev::AttemptFinish {
                    node: 0,
                    job: 0,
                    kind: TaskFlavor::Map,
                    idx: 1,
                    outcome: AttemptOutcome::Completed,
                },
            ),
            at(
                3.0,
                Ev::AttemptStart {
                    node: 1,
                    job: 0,
                    kind: TaskFlavor::Reduce,
                    idx: 0,
                },
            ),
            at(
                4.0,
                Ev::AttemptFinish {
                    node: 1,
                    job: 0,
                    kind: TaskFlavor::Reduce,
                    idx: 0,
                    outcome: AttemptOutcome::Completed,
                },
            ),
            at(
                4.0,
                Ev::JobState {
                    job: 0,
                    state: JobState::Finished,
                },
            ),
        ]
    }

    #[test]
    fn exported_trace_validates() {
        let doc = chrome_trace(&demo_events());
        let check = validate_chrome_trace(&doc).unwrap();
        assert_eq!(check.n_spans, 3);
        assert_eq!(check.n_counters, 1);
        assert_eq!(check.n_instants, 2);
        // Two worker nodes plus the synthetic jobs process.
        assert_eq!(check.n_processes, 3);
        // Overlapping maps on node 0 landed on distinct lanes.
        assert!(doc.contains("\"tid\":0"));
        assert!(doc.contains("\"tid\":1"));
        // Reduce track is offset.
        assert!(doc.contains(&format!("\"tid\":{REDUCE_TID_BASE}")));
    }

    #[test]
    fn microsecond_formatting_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1_234), "1.234");
        assert_eq!(us(1_000_000_007), "1000000.007");
    }

    #[test]
    fn validator_rejects_bad_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"events\":[]}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"Z\"}]}").is_err());
        // Span without process metadata.
        let doc = "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":5,\"tid\":0,\"ts\":0,\"dur\":1,\"name\":\"x\"}]}";
        assert!(validate_chrome_trace(doc).unwrap_err().contains("pid 5"));
        // Overlapping spans on one track.
        let doc = "{\"traceEvents\":[\
            {\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"n\"}},\
            {\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":10,\"name\":\"a\"},\
            {\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":5,\"dur\":10,\"name\":\"b\"}]}";
        assert!(validate_chrome_trace(doc)
            .unwrap_err()
            .contains("overlapping"));
    }

    #[test]
    fn empty_stream_yields_minimal_valid_trace() {
        let doc = chrome_trace(&[]);
        let check = validate_chrome_trace(&doc).unwrap();
        assert_eq!(check.n_spans, 0);
        assert_eq!(check.n_processes, 1); // the jobs process
    }
}
