//! # rmr-obs — cluster-wide observability for the simulated MapReduce stack
//!
//! A sim-time structured event bus plus the aggregators and exporters that
//! turn raw events into something a human can read:
//!
//! * [`Recorder`] / [`Ev`] — the bus. Core code emits typed events through a
//!   cheap `Option`-backed handle; with the recorder off the only cost is one
//!   branch per site (the event constructor closure is never run).
//! * [`span`] — pairs attempt start/finish events into spans and derives
//!   swimlane/occupancy figures (the one implementation `rmr_core::timeline`
//!   also delegates to).
//! * [`aggregate`] — slot-occupancy heatmaps (node x time bucket), per-node
//!   heartbeat/queue-depth traces, per-job cache-pressure gauges, and
//!   shuffle-throughput timelines, plus latency histograms.
//! * [`chrome`] — Chrome trace-event JSON export (loadable in Perfetto) and a
//!   schema validator used by the `probe obs` smoke gate.
//! * [`snapshot`] — the `Runtime::dump()` data model: per-job state,
//!   queued/running attempts, slot maps, serving-cursor and cache stats.
//!
//! The crate depends only on `rmr_des` and identifies jobs/nodes by plain
//! integers so every layer above the kernel can use it without cycles.
//!
//! Determinism contract: emitting events never touches the simulation (no
//! awaits, no task spawns, no RNG) — it is host-side bookkeeping stamped with
//! the virtual clock. Recorder-on and recorder-off runs therefore produce
//! identical event-trace hashes, and two seeded runs produce byte-identical
//! event streams; both properties are enforced by workspace tests.

pub mod aggregate;
pub mod chrome;
pub mod event;
pub mod json;
pub mod snapshot;
pub mod span;

pub use aggregate::{
    cache_pressure, heartbeat_intervals, job_tenants, queue_depth_traces, shuffle_latencies,
    shuffle_throughput, slot_heatmap, tenant_latency, tenant_latency_heatmap,
    tenant_recovery_heatmap, CachePoint, Heatmap, QueuePoint, TenantHeatmap, TenantLatency,
    ThroughputPoint,
};
pub use chrome::{chrome_trace, validate_chrome_trace, TraceCheck};
pub use event::{AttemptOutcome, Ev, JobState, ObsEvent, Recorder, TaskFlavor};
pub use snapshot::{JobSnapshot, NodeSnapshot, RuntimeSnapshot};
pub use span::{assign_lanes, mean_concurrency, spans_from_events, Span};
