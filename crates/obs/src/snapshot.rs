//! The `Runtime::dump()` snapshot contract.
//!
//! `rmr_core` fills these plain-data structs from its live state; obs owns
//! rendering (ASCII for terminals, JSON for tooling) so the debugging view of
//! a multi-job schedule has one stable shape. Everything is copied out at
//! capture time — a snapshot stays valid after the runtime moves on.

/// Per-job scheduling state at capture time.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    pub id: u32,
    pub name: String,
    /// Coarse state string (matches `JobState` tags, e.g. "maps_done").
    pub state: String,
    pub total_maps: usize,
    pub maps_completed: usize,
    pub pending_maps: usize,
    pub running_maps: usize,
    pub total_reduces: usize,
    pub reduces_completed: usize,
    pub pending_reduces: usize,
    pub submit_s: f64,
    /// `None` while the job is still queue-waiting.
    pub first_launch_s: Option<f64>,
}

impl JobSnapshot {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"id\":{},\"name\":\"{}\",\"state\":\"{}\",\"total_maps\":{},\"maps_completed\":{},\"pending_maps\":{},\"running_maps\":{},\"total_reduces\":{},\"reduces_completed\":{},\"pending_reduces\":{},\"submit_s\":{:.6},\"first_launch_s\":{}}}",
            self.id,
            self.name,
            self.state,
            self.total_maps,
            self.maps_completed,
            self.pending_maps,
            self.running_maps,
            self.total_reduces,
            self.reduces_completed,
            self.pending_reduces,
            self.submit_s,
            match self.first_launch_s {
                Some(t) => format!("{t:.6}"),
                None => "null".to_string(),
            }
        )
    }
}

/// Per-TaskTracker state at capture time.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSnapshot {
    pub node: usize,
    pub free_map_slots: u64,
    pub total_map_slots: u64,
    pub free_reduce_slots: u64,
    pub total_reduce_slots: u64,
    /// Prefetch-cache occupancy in bytes.
    pub cache_used: u64,
    pub cache_capacity: u64,
    /// Cumulative cache hits/misses served by this node.
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Open serving-side segment cursors (partially-served map outputs).
    pub serve_cursors: usize,
    /// Open serving-side disk readers.
    pub serve_readers: usize,
    /// False while the node is killed (blacklisted: no heartbeats, no
    /// assignments, outputs unrecoverable until restart).
    pub alive: bool,
    /// Restart count (0 = never killed).
    pub epoch: u64,
}

impl NodeSnapshot {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"node\":{},\"free_map_slots\":{},\"total_map_slots\":{},\"free_reduce_slots\":{},\"total_reduce_slots\":{},\"cache_used\":{},\"cache_capacity\":{},\"cache_hits\":{},\"cache_misses\":{},\"serve_cursors\":{},\"serve_readers\":{},\"alive\":{},\"epoch\":{}}}",
            self.node,
            self.free_map_slots,
            self.total_map_slots,
            self.free_reduce_slots,
            self.total_reduce_slots,
            self.cache_used,
            self.cache_capacity,
            self.cache_hits,
            self.cache_misses,
            self.serve_cursors,
            self.serve_readers,
            self.alive,
            self.epoch
        )
    }
}

/// A full cluster snapshot: what every job and node looked like at `t_s`.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeSnapshot {
    pub t_s: f64,
    pub jobs: Vec<JobSnapshot>,
    pub nodes: Vec<NodeSnapshot>,
}

impl RuntimeSnapshot {
    pub fn to_json(&self) -> String {
        let jobs: Vec<String> = self.jobs.iter().map(JobSnapshot::to_json).collect();
        let nodes: Vec<String> = self.nodes.iter().map(NodeSnapshot::to_json).collect();
        format!(
            "{{\"t_s\":{:.6},\"jobs\":[{}],\"nodes\":[{}]}}",
            self.t_s,
            jobs.join(","),
            nodes.join(",")
        )
    }

    /// Human-readable rendering for terminals and debug logs.
    pub fn render(&self) -> String {
        let mut out = format!("runtime snapshot @ {:.3}s\n", self.t_s);
        let down: Vec<String> = self
            .nodes
            .iter()
            .filter(|n| !n.alive)
            .map(|n| format!("node{}", n.node))
            .collect();
        if !down.is_empty() {
            out.push_str(&format!("  DOWN: {}\n", down.join(", ")));
        }
        out.push_str(&format!("  jobs ({}):\n", self.jobs.len()));
        for j in &self.jobs {
            let wait = match j.first_launch_s {
                Some(t) => format!("launched @ {t:.3}s"),
                None => "queued".to_string(),
            };
            out.push_str(&format!(
                "    j{} {:<12} [{}] maps {}/{} (pend {}, run {})  reduces {}/{} (pend {})  submitted @ {:.3}s, {}\n",
                j.id,
                j.name,
                j.state,
                j.maps_completed,
                j.total_maps,
                j.pending_maps,
                j.running_maps,
                j.reduces_completed,
                j.total_reduces,
                j.pending_reduces,
                j.submit_s,
                wait
            ));
        }
        out.push_str(&format!("  nodes ({}):\n", self.nodes.len()));
        for n in &self.nodes {
            out.push_str(&format!(
                "    node{:<3}{} slots m {}/{} r {}/{}  cache {}/{} B ({} hit / {} miss)  cursors {} readers {}\n",
                n.node,
                if n.alive { "" } else { " [DOWN]" },
                n.total_map_slots - n.free_map_slots,
                n.total_map_slots,
                n.total_reduce_slots - n.free_reduce_slots,
                n.total_reduce_slots,
                n.cache_used,
                n.cache_capacity,
                n.cache_hits,
                n.cache_misses,
                n.serve_cursors,
                n.serve_readers
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RuntimeSnapshot {
        RuntimeSnapshot {
            t_s: 12.5,
            jobs: vec![JobSnapshot {
                id: 1,
                name: "terasort".into(),
                state: "maps_done".into(),
                total_maps: 8,
                maps_completed: 8,
                pending_maps: 0,
                running_maps: 0,
                total_reduces: 2,
                reduces_completed: 1,
                pending_reduces: 0,
                submit_s: 0.0,
                first_launch_s: Some(0.25),
            }],
            nodes: vec![NodeSnapshot {
                node: 0,
                free_map_slots: 2,
                total_map_slots: 2,
                free_reduce_slots: 1,
                total_reduce_slots: 2,
                cache_used: 4096,
                cache_capacity: 1 << 20,
                cache_hits: 10,
                cache_misses: 2,
                serve_cursors: 1,
                serve_readers: 0,
                alive: true,
                epoch: 0,
            }],
        }
    }

    #[test]
    fn json_contains_every_field() {
        let json = sample().to_json();
        for key in [
            "\"t_s\":12.500000",
            "\"name\":\"terasort\"",
            "\"state\":\"maps_done\"",
            "\"first_launch_s\":0.250000",
            "\"cache_used\":4096",
            "\"serve_cursors\":1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // A queued job serializes first_launch_s as null.
        let mut s = sample();
        s.jobs[0].first_launch_s = None;
        assert!(s.to_json().contains("\"first_launch_s\":null"));
    }

    #[test]
    fn render_mentions_jobs_and_nodes() {
        let text = sample().render();
        assert!(text.contains("j1 terasort"));
        assert!(text.contains("maps 8/8"));
        assert!(text.contains("node0"));
        assert!(text.contains("cursors 1"));
    }
}
