//! The event bus: typed sim-time events and the [`Recorder`] handle.
//!
//! Every event is stamped with the virtual clock (integer nanoseconds, so the
//! serialized stream is byte-exact across runs) and carries only plain
//! integers/bools — no references into core data structures. Emission is
//! strictly host-side: a `Vec` push guarded by one `Option` branch.

use std::cell::RefCell;
use std::rc::Rc;

use rmr_des::Sim;

/// Map-side or reduce-side task, as seen by slot accounting and spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskFlavor {
    Map,
    Reduce,
}

impl TaskFlavor {
    pub fn as_str(self) -> &'static str {
        match self {
            TaskFlavor::Map => "map",
            TaskFlavor::Reduce => "reduce",
        }
    }
}

/// How an attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// Finished and its output was accepted.
    Completed,
    /// Ran to completion but lost the race to another attempt.
    Discarded,
    /// Injected or induced failure.
    Failed,
    /// Speculative attempt stood down by the capacity scheduler to free a
    /// slot for a queue below its guarantee; the original attempt keeps
    /// running, so no committed work is lost.
    Preempted,
}

impl AttemptOutcome {
    pub fn as_str(self) -> &'static str {
        match self {
            AttemptOutcome::Completed => "completed",
            AttemptOutcome::Discarded => "discarded",
            AttemptOutcome::Failed => "failed",
            AttemptOutcome::Preempted => "preempted",
        }
    }
}

/// Coarse job lifecycle states reported on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// `Runtime::submit` accepted the job.
    Submitted,
    /// First task attempt launched (end of queue wait).
    FirstLaunch,
    /// All map outputs accepted; shuffle can complete.
    MapsDone,
    /// Finalized; `JobResult` available.
    Finished,
}

impl JobState {
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Submitted => "submitted",
            JobState::FirstLaunch => "first_launch",
            JobState::MapsDone => "maps_done",
            JobState::Finished => "finished",
        }
    }
}

/// A typed observability event. Field conventions: `node` is the TaskTracker
/// index, `job` the numeric job id, `idx` a task index within the job.
#[derive(Debug, Clone, PartialEq)]
pub enum Ev {
    /// A task slot permit was taken on `node`.
    SlotAcquire {
        node: usize,
        job: u32,
        kind: TaskFlavor,
        idx: usize,
    },
    /// The matching permit was returned.
    SlotRelease {
        node: usize,
        job: u32,
        kind: TaskFlavor,
        idx: usize,
    },
    /// Attempt body started executing (after launch overhead scheduling).
    AttemptStart {
        node: usize,
        job: u32,
        kind: TaskFlavor,
        idx: usize,
    },
    /// Attempt body ended.
    AttemptFinish {
        node: usize,
        job: u32,
        kind: TaskFlavor,
        idx: usize,
        outcome: AttemptOutcome,
    },
    /// One heartbeat round-trip on `node`, observed after assignment:
    /// slot counts are what remains free once this round's launches happened,
    /// queue depths are summed over all active jobs.
    Heartbeat {
        node: usize,
        active_jobs: usize,
        pending_maps: u64,
        pending_reduces: u64,
        free_map_slots: u64,
        free_reduce_slots: u64,
    },
    /// Job lifecycle transition.
    JobState { job: u32, state: JobState },
    /// A reducer on `node` asked `server` for one map output partition.
    ShuffleRequest {
        node: usize,
        server: usize,
        job: u32,
        map_idx: usize,
        reduce: usize,
    },
    /// The serving TaskTracker (`node` here is the *server*) answered one
    /// request; `serve_ns` is time spent inside `serve()` (cache/disk + serde).
    ShuffleResponse {
        node: usize,
        job: u32,
        map_idx: usize,
        reduce: usize,
        bytes: u64,
        records: u64,
        from_cache: bool,
        serve_ns: u64,
    },
    /// The reduce-side merge emitted one batch downstream.
    MergeBatch {
        node: usize,
        job: u32,
        reduce: usize,
        records: u64,
        bytes: u64,
    },
    /// Reduce-side shuffle data spilled to local disk.
    Spill {
        node: usize,
        job: u32,
        reduce: usize,
        bytes: u64,
    },
    /// Serving-side prefetch cache hit.
    CacheHit {
        node: usize,
        job: u32,
        map_idx: usize,
        bytes: u64,
    },
    /// Serving-side prefetch cache miss (disk read).
    CacheMiss {
        node: usize,
        job: u32,
        map_idx: usize,
        bytes: u64,
    },
    /// Entry admitted to the cache (`demand`: re-cached after a demand miss
    /// rather than brought in by the background prefetcher).
    CacheInsert {
        node: usize,
        job: u32,
        map_idx: usize,
        bytes: u64,
        demand: bool,
    },
    /// Entry evicted to make room.
    CacheEvict {
        node: usize,
        job: u32,
        map_idx: usize,
        bytes: u64,
    },
    /// TaskTracker `node` was killed: its daemons, running attempts, and
    /// served map outputs are gone.
    NodeDown { node: usize },
    /// TaskTracker `node` came back; `epoch` counts restarts.
    NodeUp { node: usize, epoch: u64 },
    /// A running attempt died with its node (never reported its own
    /// outcome); the task was re-queued.
    AttemptLost {
        node: usize,
        job: u32,
        kind: TaskFlavor,
        idx: usize,
    },
    /// A map that had already completed on the dead `node` was re-queued for
    /// re-execution — its served outputs are unrecoverable.
    MapReExecute { node: usize, job: u32, idx: usize },
    /// Job accepted into a capacity-scheduler queue (tenant stream). Emitted
    /// right before the `Submitted` lifecycle event so aggregators can key
    /// later job events by tenant.
    JobQueued { job: u32, queue: u32 },
    /// The in-node combiner engine folded one wave of co-located map
    /// outputs: `maps` outputs totalling `bytes_in` became one aggregate of
    /// `bytes_out` — the shuffle serves `bytes_in - bytes_out` fewer bytes.
    CombineFold {
        node: usize,
        job: u32,
        maps: usize,
        bytes_in: u64,
        bytes_out: u64,
    },
    /// An RDMA responder coalesced `merged` queued requests from one reduce
    /// attempt into a single serve turn (RDMAbox-style doorbell batching).
    BatchMerge { node: usize, merged: usize },
}

impl Ev {
    /// Stable snake_case tag used in jsonl output.
    pub fn tag(&self) -> &'static str {
        match self {
            Ev::SlotAcquire { .. } => "slot_acquire",
            Ev::SlotRelease { .. } => "slot_release",
            Ev::AttemptStart { .. } => "attempt_start",
            Ev::AttemptFinish { .. } => "attempt_finish",
            Ev::Heartbeat { .. } => "heartbeat",
            Ev::JobState { .. } => "job_state",
            Ev::ShuffleRequest { .. } => "shuffle_request",
            Ev::ShuffleResponse { .. } => "shuffle_response",
            Ev::MergeBatch { .. } => "merge_batch",
            Ev::Spill { .. } => "spill",
            Ev::CacheHit { .. } => "cache_hit",
            Ev::CacheMiss { .. } => "cache_miss",
            Ev::CacheInsert { .. } => "cache_insert",
            Ev::CacheEvict { .. } => "cache_evict",
            Ev::NodeDown { .. } => "node_down",
            Ev::NodeUp { .. } => "node_up",
            Ev::AttemptLost { .. } => "attempt_lost",
            Ev::MapReExecute { .. } => "map_re_execute",
            Ev::JobQueued { .. } => "job_queued",
            Ev::CombineFold { .. } => "combine_fold",
            Ev::BatchMerge { .. } => "batch_merge",
        }
    }
}

/// One event with its virtual-clock timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Sim time in integer nanoseconds (byte-exact across runs).
    pub t_ns: u64,
    pub ev: Ev,
}

impl ObsEvent {
    /// Seconds as f64 for aggregation; jsonl keeps the integer form.
    pub fn t_s(&self) -> f64 {
        self.t_ns as f64 / 1e9
    }

    /// One flat JSON object per event: `{"t_ns":..,"ev":"..",fields...}`.
    pub fn to_json(&self) -> String {
        let mut s = format!("{{\"t_ns\":{},\"ev\":\"{}\"", self.t_ns, self.ev.tag());
        match &self.ev {
            Ev::SlotAcquire {
                node,
                job,
                kind,
                idx,
            }
            | Ev::SlotRelease {
                node,
                job,
                kind,
                idx,
            }
            | Ev::AttemptStart {
                node,
                job,
                kind,
                idx,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"job\":{job},\"kind\":\"{}\",\"idx\":{idx}",
                    kind.as_str()
                ));
            }
            Ev::AttemptFinish {
                node,
                job,
                kind,
                idx,
                outcome,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"job\":{job},\"kind\":\"{}\",\"idx\":{idx},\"outcome\":\"{}\"",
                    kind.as_str(),
                    outcome.as_str()
                ));
            }
            Ev::Heartbeat {
                node,
                active_jobs,
                pending_maps,
                pending_reduces,
                free_map_slots,
                free_reduce_slots,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"active_jobs\":{active_jobs},\"pending_maps\":{pending_maps},\"pending_reduces\":{pending_reduces},\"free_map_slots\":{free_map_slots},\"free_reduce_slots\":{free_reduce_slots}"
                ));
            }
            Ev::JobState { job, state } => {
                s.push_str(&format!(",\"job\":{job},\"state\":\"{}\"", state.as_str()));
            }
            Ev::ShuffleRequest {
                node,
                server,
                job,
                map_idx,
                reduce,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"server\":{server},\"job\":{job},\"map_idx\":{map_idx},\"reduce\":{reduce}"
                ));
            }
            Ev::ShuffleResponse {
                node,
                job,
                map_idx,
                reduce,
                bytes,
                records,
                from_cache,
                serve_ns,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"job\":{job},\"map_idx\":{map_idx},\"reduce\":{reduce},\"bytes\":{bytes},\"records\":{records},\"from_cache\":{from_cache},\"serve_ns\":{serve_ns}"
                ));
            }
            Ev::MergeBatch {
                node,
                job,
                reduce,
                records,
                bytes,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"job\":{job},\"reduce\":{reduce},\"records\":{records},\"bytes\":{bytes}"
                ));
            }
            Ev::Spill {
                node,
                job,
                reduce,
                bytes,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"job\":{job},\"reduce\":{reduce},\"bytes\":{bytes}"
                ));
            }
            Ev::CacheHit {
                node,
                job,
                map_idx,
                bytes,
            }
            | Ev::CacheMiss {
                node,
                job,
                map_idx,
                bytes,
            }
            | Ev::CacheEvict {
                node,
                job,
                map_idx,
                bytes,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"job\":{job},\"map_idx\":{map_idx},\"bytes\":{bytes}"
                ));
            }
            Ev::CacheInsert {
                node,
                job,
                map_idx,
                bytes,
                demand,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"job\":{job},\"map_idx\":{map_idx},\"bytes\":{bytes},\"demand\":{demand}"
                ));
            }
            Ev::NodeDown { node } => {
                s.push_str(&format!(",\"node\":{node}"));
            }
            Ev::NodeUp { node, epoch } => {
                s.push_str(&format!(",\"node\":{node},\"epoch\":{epoch}"));
            }
            Ev::AttemptLost {
                node,
                job,
                kind,
                idx,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"job\":{job},\"kind\":\"{}\",\"idx\":{idx}",
                    kind.as_str()
                ));
            }
            Ev::MapReExecute { node, job, idx } => {
                s.push_str(&format!(",\"node\":{node},\"job\":{job},\"idx\":{idx}"));
            }
            Ev::JobQueued { job, queue } => {
                s.push_str(&format!(",\"job\":{job},\"queue\":{queue}"));
            }
            Ev::CombineFold {
                node,
                job,
                maps,
                bytes_in,
                bytes_out,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"job\":{job},\"maps\":{maps},\"bytes_in\":{bytes_in},\"bytes_out\":{bytes_out}"
                ));
            }
            Ev::BatchMerge { node, merged } => {
                s.push_str(&format!(",\"node\":{node},\"merged\":{merged}"));
            }
        }
        s.push('}');
        s
    }
}

struct RecInner {
    sim: Sim,
    events: RefCell<Vec<ObsEvent>>,
}

/// Cheap, clonable handle to the event bus.
///
/// `Recorder::off()` is the default everywhere; core code calls
/// [`Recorder::emit`] with a closure so that when recording is disabled the
/// event is never even constructed. All state is host-side (`Rc` + `RefCell`)
/// and emission never interacts with the simulation, so enabling the recorder
/// cannot perturb event ordering or trace hashes.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<RecInner>>,
}

impl Recorder {
    /// Disabled recorder: every `emit` is a single branch.
    pub fn off() -> Self {
        Recorder { inner: None }
    }

    /// Enabled recorder stamping events with `sim`'s virtual clock.
    pub fn on(sim: &Sim) -> Self {
        Recorder {
            inner: Some(Rc::new(RecInner {
                sim: sim.clone(),
                events: RefCell::new(Vec::new()),
            })),
        }
    }

    pub fn is_on(&self) -> bool {
        self.inner.is_some()
    }

    /// Record one event; `f` runs only when recording is enabled.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Ev) {
        if let Some(inner) = &self.inner {
            let t_ns = inner.sim.now().as_nanos();
            inner.events.borrow_mut().push(ObsEvent { t_ns, ev: f() });
        }
    }

    /// Current sim time in ns, or `None` when off. Use to bracket durations
    /// without paying for clock reads on the disabled path.
    #[inline]
    pub fn now_ns(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.sim.now().as_nanos())
    }

    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.events.borrow().len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the event stream so far (cloned out of the bus).
    pub fn events(&self) -> Vec<ObsEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.events.borrow().clone())
    }

    /// The whole stream as jsonl (one event per line, trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        if let Some(inner) = &self.inner {
            for ev in inner.events.borrow().iter() {
                out.push_str(&ev.to_json());
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_never_runs_the_closure() {
        let rec = Recorder::off();
        let mut ran = false;
        rec.emit(|| {
            ran = true;
            Ev::JobState {
                job: 0,
                state: JobState::Submitted,
            }
        });
        assert!(!ran);
        assert!(!rec.is_on());
        assert!(rec.is_empty());
        assert_eq!(rec.now_ns(), None);
        assert_eq!(rec.to_jsonl(), "");
    }

    #[test]
    fn on_recorder_stamps_sim_time() {
        let sim = Sim::new(7);
        let rec = Recorder::on(&sim);
        let r2 = rec.clone();
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(SimDuration::from_secs_f64(1.5)).await;
            r2.emit(|| Ev::JobState {
                job: 3,
                state: JobState::Finished,
            });
        })
        .detach();
        sim.run();
        let evs = rec.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].t_ns, 1_500_000_000);
        assert_eq!(
            evs[0].to_json(),
            "{\"t_ns\":1500000000,\"ev\":\"job_state\",\"job\":3,\"state\":\"finished\"}"
        );
    }

    use rmr_des::SimDuration;

    #[test]
    fn every_variant_serializes_with_its_tag() {
        let cases: Vec<(Ev, &str)> = vec![
            (
                Ev::SlotAcquire {
                    node: 1,
                    job: 2,
                    kind: TaskFlavor::Map,
                    idx: 3,
                },
                "slot_acquire",
            ),
            (
                Ev::SlotRelease {
                    node: 1,
                    job: 2,
                    kind: TaskFlavor::Reduce,
                    idx: 3,
                },
                "slot_release",
            ),
            (
                Ev::AttemptStart {
                    node: 0,
                    job: 0,
                    kind: TaskFlavor::Map,
                    idx: 0,
                },
                "attempt_start",
            ),
            (
                Ev::AttemptFinish {
                    node: 0,
                    job: 0,
                    kind: TaskFlavor::Map,
                    idx: 0,
                    outcome: AttemptOutcome::Discarded,
                },
                "attempt_finish",
            ),
            (
                Ev::Heartbeat {
                    node: 2,
                    active_jobs: 1,
                    pending_maps: 4,
                    pending_reduces: 2,
                    free_map_slots: 0,
                    free_reduce_slots: 1,
                },
                "heartbeat",
            ),
            (
                Ev::JobState {
                    job: 9,
                    state: JobState::MapsDone,
                },
                "job_state",
            ),
            (
                Ev::ShuffleRequest {
                    node: 1,
                    server: 2,
                    job: 0,
                    map_idx: 5,
                    reduce: 1,
                },
                "shuffle_request",
            ),
            (
                Ev::ShuffleResponse {
                    node: 2,
                    job: 0,
                    map_idx: 5,
                    reduce: 1,
                    bytes: 4096,
                    records: 40,
                    from_cache: true,
                    serve_ns: 1000,
                },
                "shuffle_response",
            ),
            (
                Ev::MergeBatch {
                    node: 1,
                    job: 0,
                    reduce: 1,
                    records: 100,
                    bytes: 9999,
                },
                "merge_batch",
            ),
            (
                Ev::Spill {
                    node: 1,
                    job: 0,
                    reduce: 1,
                    bytes: 5000,
                },
                "spill",
            ),
            (
                Ev::CacheHit {
                    node: 0,
                    job: 1,
                    map_idx: 2,
                    bytes: 10,
                },
                "cache_hit",
            ),
            (
                Ev::CacheMiss {
                    node: 0,
                    job: 1,
                    map_idx: 2,
                    bytes: 10,
                },
                "cache_miss",
            ),
            (
                Ev::CacheInsert {
                    node: 0,
                    job: 1,
                    map_idx: 2,
                    bytes: 10,
                    demand: false,
                },
                "cache_insert",
            ),
            (
                Ev::CacheEvict {
                    node: 0,
                    job: 1,
                    map_idx: 2,
                    bytes: 10,
                },
                "cache_evict",
            ),
            (Ev::NodeDown { node: 3 }, "node_down"),
            (Ev::NodeUp { node: 3, epoch: 2 }, "node_up"),
            (
                Ev::AttemptLost {
                    node: 3,
                    job: 1,
                    kind: TaskFlavor::Map,
                    idx: 7,
                },
                "attempt_lost",
            ),
            (
                Ev::MapReExecute {
                    node: 3,
                    job: 1,
                    idx: 7,
                },
                "map_re_execute",
            ),
            (Ev::JobQueued { job: 12, queue: 1 }, "job_queued"),
            (
                Ev::CombineFold {
                    node: 2,
                    job: 0,
                    maps: 4,
                    bytes_in: 4000,
                    bytes_out: 1000,
                },
                "combine_fold",
            ),
            (Ev::BatchMerge { node: 2, merged: 3 }, "batch_merge"),
        ];
        for (ev, tag) in cases {
            assert_eq!(ev.tag(), tag);
            let json = ObsEvent { t_ns: 42, ev }.to_json();
            assert!(json.starts_with("{\"t_ns\":42,\"ev\":\""), "{json}");
            assert!(json.contains(&format!("\"ev\":\"{tag}\"")), "{json}");
            assert!(json.ends_with('}'), "{json}");
        }
    }
}
