//! Aggregators: turn the raw event stream into per-node / per-job series.
//!
//! All functions are pure over `&[ObsEvent]` (plus span inputs where noted)
//! so they can run post-hoc on an exported stream as well as in-process.

use std::collections::BTreeMap;

use rmr_des::Histogram;

use crate::event::{Ev, ObsEvent};
use crate::span::Span;

/// Row cap for [`slot_heatmap`]: past this many nodes, adjacent nodes are
/// folded together so the output stays `O(rows x buckets)` instead of
/// growing with the cluster (a 1k-node sweep would otherwise emit 4x the
/// cells of the figures it rides along with).
pub const MAX_HEATMAP_ROWS: usize = 256;

/// Slot-occupancy heatmap: rows are node groups (`node_stride` physical
/// nodes each, 1 for small clusters), columns are time buckets, cells are
/// mean occupied slots (map + reduce) per node during the bucket.
#[derive(Debug, Clone)]
pub struct Heatmap {
    pub t0_s: f64,
    pub bucket_s: f64,
    /// Physical nodes folded into each row (1 = one row per node).
    pub node_stride: usize,
    /// `rows[node / node_stride][bucket]` = mean occupied slots per node.
    pub rows: Vec<Vec<f64>>,
}

impl Heatmap {
    pub fn n_buckets(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// ASCII rendering: one row per node, one char per bucket, shaded by
    /// occupancy relative to the hottest cell.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.rows.iter().flatten().fold(0.0f64, |m, &v| m.max(v));
        let mut out = String::new();
        out.push_str(&format!(
            "slot occupancy — {} nodes x {} buckets of {:.2}s (max {:.2} slots)\n",
            self.rows.len(),
            self.n_buckets(),
            self.bucket_s,
            max
        ));
        for (group, row) in self.rows.iter().enumerate() {
            let node = group * self.node_stride;
            out.push_str(&format!("node{node:>3} |"));
            for &v in row {
                let shade = if max > 0.0 {
                    ((v / max) * (RAMP.len() - 1) as f64).round() as usize
                } else {
                    0
                };
                out.push(RAMP[shade.min(RAMP.len() - 1)] as char);
            }
            out.push_str("|\n");
        }
        out
    }

    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"t0_s\":{:.6},\"bucket_s\":{:.6},\"node_stride\":{},\"nodes\":{},\"buckets\":{},\"rows\":[{}]}}",
            self.t0_s,
            self.bucket_s,
            self.node_stride,
            self.rows.len(),
            self.n_buckets(),
            rows.join(",")
        )
    }
}

/// Build the occupancy heatmap from attempt spans (`n_nodes` fixes the row
/// count so idle nodes still show). `n_buckets` caps resolution; bucket width
/// stretches to cover the span envelope.
pub fn slot_heatmap(spans: &[Span], n_nodes: usize, n_buckets: usize) -> Heatmap {
    let node_stride = n_nodes.div_ceil(MAX_HEATMAP_ROWS).max(1);
    let n_rows = n_nodes.div_ceil(node_stride);
    let (lo, hi) = spans.iter().fold((f64::MAX, f64::MIN), |(lo, hi), s| {
        (lo.min(s.start_s), hi.max(s.end_s))
    });
    if spans.is_empty() || hi <= lo || n_buckets == 0 {
        return Heatmap {
            t0_s: 0.0,
            bucket_s: 1.0,
            node_stride,
            rows: vec![Vec::new(); n_rows],
        };
    }
    let bucket_s = (hi - lo) / n_buckets as f64;
    let mut rows = vec![vec![0.0f64; n_buckets]; n_rows];
    for s in spans {
        if s.node >= n_nodes {
            continue;
        }
        let group = s.node / node_stride;
        // Nodes actually folded into this row (the last group may be short).
        let group_nodes = node_stride.min(n_nodes - group * node_stride) as f64;
        // Distribute the span's busy time over the buckets it crosses.
        let b0 = (((s.start_s - lo) / bucket_s) as usize).min(n_buckets - 1);
        let b1 = (((s.end_s - lo) / bucket_s) as usize).min(n_buckets - 1);
        for (b, cell) in rows[group].iter_mut().enumerate().take(b1 + 1).skip(b0) {
            let bl = lo + b as f64 * bucket_s;
            let bh = bl + bucket_s;
            let overlap = (s.end_s.min(bh) - s.start_s.max(bl)).max(0.0);
            *cell += overlap / bucket_s / group_nodes;
        }
    }
    Heatmap {
        t0_s: lo,
        bucket_s,
        node_stride,
        rows,
    }
}

/// One heartbeat observation on a node.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuePoint {
    pub t_s: f64,
    pub node: usize,
    pub active_jobs: usize,
    pub pending_maps: u64,
    pub pending_reduces: u64,
    pub free_map_slots: u64,
    pub free_reduce_slots: u64,
}

impl QueuePoint {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_s\":{:.6},\"node\":{},\"active_jobs\":{},\"pending_maps\":{},\"pending_reduces\":{},\"free_map_slots\":{},\"free_reduce_slots\":{}}}",
            self.t_s,
            self.node,
            self.active_jobs,
            self.pending_maps,
            self.pending_reduces,
            self.free_map_slots,
            self.free_reduce_slots
        )
    }
}

/// Per-node heartbeat/queue-depth traces, keyed by node index.
pub fn queue_depth_traces(events: &[ObsEvent]) -> BTreeMap<usize, Vec<QueuePoint>> {
    let mut out: BTreeMap<usize, Vec<QueuePoint>> = BTreeMap::new();
    for e in events {
        if let Ev::Heartbeat {
            node,
            active_jobs,
            pending_maps,
            pending_reduces,
            free_map_slots,
            free_reduce_slots,
        } = &e.ev
        {
            out.entry(*node).or_default().push(QueuePoint {
                t_s: e.t_s(),
                node: *node,
                active_jobs: *active_jobs,
                pending_maps: *pending_maps,
                pending_reduces: *pending_reduces,
                free_map_slots: *free_map_slots,
                free_reduce_slots: *free_reduce_slots,
            });
        }
    }
    out
}

/// Cache-pressure gauge sample for one job: cumulative counters at `t_s`.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePoint {
    pub t_s: f64,
    pub job: u32,
    pub hits: u64,
    pub misses: u64,
    pub hit_bytes: u64,
    pub miss_bytes: u64,
    pub prefetch_insert_bytes: u64,
    pub demand_insert_bytes: u64,
    pub evicted_bytes: u64,
}

impl CachePoint {
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_s\":{:.6},\"job\":{},\"hits\":{},\"misses\":{},\"hit_ratio\":{:.4},\"hit_bytes\":{},\"miss_bytes\":{},\"prefetch_insert_bytes\":{},\"demand_insert_bytes\":{},\"evicted_bytes\":{}}}",
            self.t_s,
            self.job,
            self.hits,
            self.misses,
            self.hit_ratio(),
            self.hit_bytes,
            self.miss_bytes,
            self.prefetch_insert_bytes,
            self.demand_insert_bytes,
            self.evicted_bytes
        )
    }
}

/// How one cache event folds into a job's cumulative [`CachePoint`].
type CacheUpdate = Box<dyn FnOnce(&mut CachePoint)>;

/// Per-job cache-pressure series: one cumulative sample per cache event that
/// touches the job (hit/miss/insert/evict), cluster-wide.
pub fn cache_pressure(events: &[ObsEvent]) -> BTreeMap<u32, Vec<CachePoint>> {
    let mut out: BTreeMap<u32, Vec<CachePoint>> = BTreeMap::new();
    let mut acc: BTreeMap<u32, CachePoint> = BTreeMap::new();
    for e in events {
        let (job, update): (u32, CacheUpdate) = match &e.ev {
            Ev::CacheHit { job, bytes, .. } => {
                let b = *bytes;
                (
                    *job,
                    Box::new(move |p| {
                        p.hits += 1;
                        p.hit_bytes += b;
                    }),
                )
            }
            Ev::CacheMiss { job, bytes, .. } => {
                let b = *bytes;
                (
                    *job,
                    Box::new(move |p| {
                        p.misses += 1;
                        p.miss_bytes += b;
                    }),
                )
            }
            Ev::CacheInsert {
                job, bytes, demand, ..
            } => {
                let b = *bytes;
                let d = *demand;
                (
                    *job,
                    Box::new(move |p| {
                        if d {
                            p.demand_insert_bytes += b;
                        } else {
                            p.prefetch_insert_bytes += b;
                        }
                    }),
                )
            }
            Ev::CacheEvict { job, bytes, .. } => {
                let b = *bytes;
                (*job, Box::new(move |p| p.evicted_bytes += b))
            }
            _ => continue,
        };
        let p = acc.entry(job).or_insert_with(|| CachePoint {
            t_s: 0.0,
            job,
            hits: 0,
            misses: 0,
            hit_bytes: 0,
            miss_bytes: 0,
            prefetch_insert_bytes: 0,
            demand_insert_bytes: 0,
            evicted_bytes: 0,
        });
        update(p);
        p.t_s = e.t_s();
        out.entry(job).or_default().push(p.clone());
    }
    out
}

/// One shuffle-serving throughput bucket on a server node.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputPoint {
    pub t_s: f64,
    pub node: usize,
    pub bytes: u64,
    pub responses: u64,
    pub cache_hits: u64,
}

impl ThroughputPoint {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_s\":{:.6},\"node\":{},\"bytes\":{},\"responses\":{},\"cache_hits\":{}}}",
            self.t_s, self.node, self.bytes, self.responses, self.cache_hits
        )
    }
}

/// Shuffle-throughput timeline per serving node: `ShuffleResponse` bytes
/// bucketed into `bucket_s`-wide bins.
pub fn shuffle_throughput(
    events: &[ObsEvent],
    bucket_s: f64,
) -> BTreeMap<usize, Vec<ThroughputPoint>> {
    let mut out: BTreeMap<usize, BTreeMap<u64, ThroughputPoint>> = BTreeMap::new();
    for e in events {
        if let Ev::ShuffleResponse {
            node,
            bytes,
            from_cache,
            ..
        } = &e.ev
        {
            let bucket = (e.t_s() / bucket_s) as u64;
            let p = out
                .entry(*node)
                .or_default()
                .entry(bucket)
                .or_insert_with(|| ThroughputPoint {
                    t_s: bucket as f64 * bucket_s,
                    node: *node,
                    bytes: 0,
                    responses: 0,
                    cache_hits: 0,
                });
            p.bytes += bytes;
            p.responses += 1;
            if *from_cache {
                p.cache_hits += 1;
            }
        }
    }
    out.into_iter()
        .map(|(node, buckets)| (node, buckets.into_values().collect()))
        .collect()
}

/// Heartbeat-interval histogram (seconds between consecutive heartbeats,
/// pooled over all nodes).
pub fn heartbeat_intervals(events: &[ObsEvent]) -> Histogram {
    let mut last: BTreeMap<usize, f64> = BTreeMap::new();
    let mut h = Histogram::new();
    for e in events {
        if let Ev::Heartbeat { node, .. } = &e.ev {
            let t = e.t_s();
            if let Some(prev) = last.insert(*node, t) {
                h.record(t - prev);
            }
        }
    }
    h
}

/// Server-side shuffle-serve latency histogram (seconds per `serve()` call).
pub fn shuffle_latencies(events: &[ObsEvent]) -> Histogram {
    let mut h = Histogram::new();
    for e in events {
        if let Ev::ShuffleResponse { serve_ns, .. } = &e.ev {
            h.record(*serve_ns as f64 / 1e9);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttemptOutcome, TaskFlavor};

    fn span(node: usize, start_s: f64, end_s: f64) -> Span {
        Span {
            node,
            job: 0,
            kind: TaskFlavor::Map,
            idx: 0,
            start_s,
            end_s,
            outcome: AttemptOutcome::Completed,
        }
    }

    fn at(t_s: f64, ev: Ev) -> ObsEvent {
        ObsEvent {
            t_ns: (t_s * 1e9) as u64,
            ev,
        }
    }

    #[test]
    fn heatmap_distributes_span_time_across_buckets() {
        // One span covering [0, 10) on node 0 of 2; 5 buckets of 2s.
        let hm = slot_heatmap(&[span(0, 0.0, 10.0)], 2, 5);
        assert_eq!(hm.rows.len(), 2);
        assert_eq!(hm.n_buckets(), 5);
        for b in 0..5 {
            assert!((hm.rows[0][b] - 1.0).abs() < 1e-9, "bucket {b}");
            assert_eq!(hm.rows[1][b], 0.0);
        }
        let ascii = hm.to_ascii();
        assert!(ascii.contains("node  0"));
        assert!(ascii.lines().count() >= 3);
        let json = hm.to_json();
        assert!(json.contains("\"nodes\":2"));
        assert!(json.contains("\"buckets\":5"));
    }

    #[test]
    fn heatmap_partial_overlap_is_fractional() {
        // Span [0, 1) in a 2s bucket → 0.5 mean occupancy; envelope [0,4).
        let hm = slot_heatmap(&[span(0, 0.0, 1.0), span(0, 3.9, 4.0)], 1, 2);
        assert!((hm.rows[0][0] - 0.5).abs() < 1e-9);
        assert!((hm.rows[0][1] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn empty_heatmap_is_harmless() {
        let hm = slot_heatmap(&[], 3, 10);
        assert_eq!(hm.rows.len(), 3);
        assert_eq!(hm.node_stride, 1);
        assert_eq!(hm.n_buckets(), 0);
        assert!(!hm.to_ascii().is_empty());
        assert!(hm.to_json().starts_with('{'));
    }

    #[test]
    fn heatmap_node_axis_is_capped_at_scale() {
        // 1024 nodes fold 4-to-a-row: output stays O(256 x buckets), and a
        // row's cell is the *per-node* mean over its group so shading stays
        // comparable with small clusters.
        let spans: Vec<Span> = (0..1024).map(|n| span(n, 0.0, 10.0)).collect();
        let hm = slot_heatmap(&spans, 1024, 8);
        assert_eq!(hm.node_stride, 4);
        assert_eq!(hm.rows.len(), 256);
        for row in &hm.rows {
            for &v in row {
                assert!((v - 1.0).abs() < 1e-9);
            }
        }
        assert!(hm.to_json().contains("\"node_stride\":4"));

        // A short last group still averages over its real size.
        let spans: Vec<Span> = (0..257).map(|n| span(n, 0.0, 2.0)).collect();
        let hm = slot_heatmap(&spans, 257, 2);
        assert_eq!(hm.node_stride, 2);
        assert_eq!(hm.rows.len(), 129);
        assert!((hm.rows[128][0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn queue_traces_group_by_node() {
        let events = vec![
            at(
                1.0,
                Ev::Heartbeat {
                    node: 0,
                    active_jobs: 1,
                    pending_maps: 5,
                    pending_reduces: 2,
                    free_map_slots: 0,
                    free_reduce_slots: 2,
                },
            ),
            at(
                1.5,
                Ev::Heartbeat {
                    node: 1,
                    active_jobs: 1,
                    pending_maps: 3,
                    pending_reduces: 2,
                    free_map_slots: 1,
                    free_reduce_slots: 2,
                },
            ),
            at(
                2.0,
                Ev::Heartbeat {
                    node: 0,
                    active_jobs: 1,
                    pending_maps: 1,
                    pending_reduces: 2,
                    free_map_slots: 0,
                    free_reduce_slots: 2,
                },
            ),
        ];
        let traces = queue_depth_traces(&events);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[&0].len(), 2);
        assert_eq!(traces[&1].len(), 1);
        assert_eq!(traces[&0][1].pending_maps, 1);
        assert!(traces[&0][0].to_json().contains("\"pending_maps\":5"));

        let h = heartbeat_intervals(&events);
        assert_eq!(h.count(), 1); // only node 0 has two beats
        assert!((h.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cache_pressure_accumulates_per_job() {
        let events = vec![
            at(
                1.0,
                Ev::CacheInsert {
                    node: 0,
                    job: 7,
                    map_idx: 0,
                    bytes: 100,
                    demand: false,
                },
            ),
            at(
                2.0,
                Ev::CacheHit {
                    node: 0,
                    job: 7,
                    map_idx: 0,
                    bytes: 100,
                },
            ),
            at(
                3.0,
                Ev::CacheMiss {
                    node: 0,
                    job: 7,
                    map_idx: 1,
                    bytes: 50,
                },
            ),
            at(
                4.0,
                Ev::CacheInsert {
                    node: 0,
                    job: 7,
                    map_idx: 1,
                    bytes: 50,
                    demand: true,
                },
            ),
            at(
                5.0,
                Ev::CacheEvict {
                    node: 0,
                    job: 7,
                    map_idx: 0,
                    bytes: 100,
                },
            ),
        ];
        let series = cache_pressure(&events);
        let pts = &series[&7];
        assert_eq!(pts.len(), 5);
        let last = pts.last().unwrap();
        assert_eq!(last.hits, 1);
        assert_eq!(last.misses, 1);
        assert_eq!(last.prefetch_insert_bytes, 100);
        assert_eq!(last.demand_insert_bytes, 50);
        assert_eq!(last.evicted_bytes, 100);
        assert!((last.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_buckets_responses_per_server() {
        let resp = |t_s: f64, node: usize, bytes: u64, from_cache: bool| {
            at(
                t_s,
                Ev::ShuffleResponse {
                    node,
                    job: 0,
                    map_idx: 0,
                    reduce: 0,
                    bytes,
                    records: 1,
                    from_cache,
                    serve_ns: 2_000_000,
                },
            )
        };
        let events = vec![
            resp(0.1, 0, 1000, true),
            resp(0.9, 0, 1000, false),
            resp(1.5, 0, 500, false),
            resp(0.2, 1, 300, false),
        ];
        let tl = shuffle_throughput(&events, 1.0);
        assert_eq!(tl[&0].len(), 2);
        assert_eq!(tl[&0][0].bytes, 2000);
        assert_eq!(tl[&0][0].responses, 2);
        assert_eq!(tl[&0][0].cache_hits, 1);
        assert_eq!(tl[&0][1].bytes, 500);
        assert_eq!(tl[&1][0].bytes, 300);

        let lat = shuffle_latencies(&events);
        assert_eq!(lat.count(), 4);
        assert!((lat.mean() - 0.002).abs() < 1e-9);
    }
}
