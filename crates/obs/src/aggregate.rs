//! Aggregators: turn the raw event stream into per-node / per-job series.
//!
//! All functions are pure over `&[ObsEvent]` (plus span inputs where noted)
//! so they can run post-hoc on an exported stream as well as in-process.

use std::collections::BTreeMap;

use rmr_des::Histogram;

use crate::event::{Ev, ObsEvent};
use crate::span::Span;

/// Row cap for [`slot_heatmap`]: past this many nodes, adjacent nodes are
/// folded together so the output stays `O(rows x buckets)` instead of
/// growing with the cluster (a 1k-node sweep would otherwise emit 4x the
/// cells of the figures it rides along with).
pub const MAX_HEATMAP_ROWS: usize = 256;

/// Slot-occupancy heatmap: rows are node groups (`node_stride` physical
/// nodes each, 1 for small clusters), columns are time buckets, cells are
/// mean occupied slots (map + reduce) per node during the bucket.
#[derive(Debug, Clone)]
pub struct Heatmap {
    pub t0_s: f64,
    pub bucket_s: f64,
    /// Physical nodes folded into each row (1 = one row per node).
    pub node_stride: usize,
    /// `rows[node / node_stride][bucket]` = mean occupied slots per node.
    pub rows: Vec<Vec<f64>>,
}

impl Heatmap {
    pub fn n_buckets(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// ASCII rendering: one row per node, one char per bucket, shaded by
    /// occupancy relative to the hottest cell.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.rows.iter().flatten().fold(0.0f64, |m, &v| m.max(v));
        let mut out = String::new();
        out.push_str(&format!(
            "slot occupancy — {} nodes x {} buckets of {:.2}s (max {:.2} slots)\n",
            self.rows.len(),
            self.n_buckets(),
            self.bucket_s,
            max
        ));
        for (group, row) in self.rows.iter().enumerate() {
            let node = group * self.node_stride;
            out.push_str(&format!("node{node:>3} |"));
            for &v in row {
                let shade = if max > 0.0 {
                    ((v / max) * (RAMP.len() - 1) as f64).round() as usize
                } else {
                    0
                };
                out.push(RAMP[shade.min(RAMP.len() - 1)] as char);
            }
            out.push_str("|\n");
        }
        out
    }

    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"t0_s\":{:.6},\"bucket_s\":{:.6},\"node_stride\":{},\"nodes\":{},\"buckets\":{},\"rows\":[{}]}}",
            self.t0_s,
            self.bucket_s,
            self.node_stride,
            self.rows.len(),
            self.n_buckets(),
            rows.join(",")
        )
    }
}

/// Build the occupancy heatmap from attempt spans (`n_nodes` fixes the row
/// count so idle nodes still show). `n_buckets` caps resolution; bucket width
/// stretches to cover the span envelope.
pub fn slot_heatmap(spans: &[Span], n_nodes: usize, n_buckets: usize) -> Heatmap {
    let node_stride = n_nodes.div_ceil(MAX_HEATMAP_ROWS).max(1);
    let n_rows = n_nodes.div_ceil(node_stride);
    let (lo, hi) = spans.iter().fold((f64::MAX, f64::MIN), |(lo, hi), s| {
        (lo.min(s.start_s), hi.max(s.end_s))
    });
    if spans.is_empty() || hi <= lo || n_buckets == 0 {
        return Heatmap {
            t0_s: 0.0,
            bucket_s: 1.0,
            node_stride,
            rows: vec![Vec::new(); n_rows],
        };
    }
    let bucket_s = (hi - lo) / n_buckets as f64;
    let mut rows = vec![vec![0.0f64; n_buckets]; n_rows];
    for s in spans {
        if s.node >= n_nodes {
            continue;
        }
        let group = s.node / node_stride;
        // Nodes actually folded into this row (the last group may be short).
        let group_nodes = node_stride.min(n_nodes - group * node_stride) as f64;
        // Distribute the span's busy time over the buckets it crosses.
        let b0 = (((s.start_s - lo) / bucket_s) as usize).min(n_buckets - 1);
        let b1 = (((s.end_s - lo) / bucket_s) as usize).min(n_buckets - 1);
        for (b, cell) in rows[group].iter_mut().enumerate().take(b1 + 1).skip(b0) {
            let bl = lo + b as f64 * bucket_s;
            let bh = bl + bucket_s;
            let overlap = (s.end_s.min(bh) - s.start_s.max(bl)).max(0.0);
            *cell += overlap / bucket_s / group_nodes;
        }
    }
    Heatmap {
        t0_s: lo,
        bucket_s,
        node_stride,
        rows,
    }
}

/// One heartbeat observation on a node.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuePoint {
    pub t_s: f64,
    pub node: usize,
    pub active_jobs: usize,
    pub pending_maps: u64,
    pub pending_reduces: u64,
    pub free_map_slots: u64,
    pub free_reduce_slots: u64,
}

impl QueuePoint {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_s\":{:.6},\"node\":{},\"active_jobs\":{},\"pending_maps\":{},\"pending_reduces\":{},\"free_map_slots\":{},\"free_reduce_slots\":{}}}",
            self.t_s,
            self.node,
            self.active_jobs,
            self.pending_maps,
            self.pending_reduces,
            self.free_map_slots,
            self.free_reduce_slots
        )
    }
}

/// Per-node heartbeat/queue-depth traces, keyed by node index.
pub fn queue_depth_traces(events: &[ObsEvent]) -> BTreeMap<usize, Vec<QueuePoint>> {
    let mut out: BTreeMap<usize, Vec<QueuePoint>> = BTreeMap::new();
    for e in events {
        if let Ev::Heartbeat {
            node,
            active_jobs,
            pending_maps,
            pending_reduces,
            free_map_slots,
            free_reduce_slots,
        } = &e.ev
        {
            out.entry(*node).or_default().push(QueuePoint {
                t_s: e.t_s(),
                node: *node,
                active_jobs: *active_jobs,
                pending_maps: *pending_maps,
                pending_reduces: *pending_reduces,
                free_map_slots: *free_map_slots,
                free_reduce_slots: *free_reduce_slots,
            });
        }
    }
    out
}

/// Cache-pressure gauge sample for one job: cumulative counters at `t_s`.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePoint {
    pub t_s: f64,
    pub job: u32,
    pub hits: u64,
    pub misses: u64,
    pub hit_bytes: u64,
    pub miss_bytes: u64,
    pub prefetch_insert_bytes: u64,
    pub demand_insert_bytes: u64,
    pub evicted_bytes: u64,
}

impl CachePoint {
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_s\":{:.6},\"job\":{},\"hits\":{},\"misses\":{},\"hit_ratio\":{:.4},\"hit_bytes\":{},\"miss_bytes\":{},\"prefetch_insert_bytes\":{},\"demand_insert_bytes\":{},\"evicted_bytes\":{}}}",
            self.t_s,
            self.job,
            self.hits,
            self.misses,
            self.hit_ratio(),
            self.hit_bytes,
            self.miss_bytes,
            self.prefetch_insert_bytes,
            self.demand_insert_bytes,
            self.evicted_bytes
        )
    }
}

/// How one cache event folds into a job's cumulative [`CachePoint`].
type CacheUpdate = Box<dyn FnOnce(&mut CachePoint)>;

/// Per-job cache-pressure series: one cumulative sample per cache event that
/// touches the job (hit/miss/insert/evict), cluster-wide.
pub fn cache_pressure(events: &[ObsEvent]) -> BTreeMap<u32, Vec<CachePoint>> {
    let mut out: BTreeMap<u32, Vec<CachePoint>> = BTreeMap::new();
    let mut acc: BTreeMap<u32, CachePoint> = BTreeMap::new();
    for e in events {
        let (job, update): (u32, CacheUpdate) = match &e.ev {
            Ev::CacheHit { job, bytes, .. } => {
                let b = *bytes;
                (
                    *job,
                    Box::new(move |p| {
                        p.hits += 1;
                        p.hit_bytes += b;
                    }),
                )
            }
            Ev::CacheMiss { job, bytes, .. } => {
                let b = *bytes;
                (
                    *job,
                    Box::new(move |p| {
                        p.misses += 1;
                        p.miss_bytes += b;
                    }),
                )
            }
            Ev::CacheInsert {
                job, bytes, demand, ..
            } => {
                let b = *bytes;
                let d = *demand;
                (
                    *job,
                    Box::new(move |p| {
                        if d {
                            p.demand_insert_bytes += b;
                        } else {
                            p.prefetch_insert_bytes += b;
                        }
                    }),
                )
            }
            Ev::CacheEvict { job, bytes, .. } => {
                let b = *bytes;
                (*job, Box::new(move |p| p.evicted_bytes += b))
            }
            _ => continue,
        };
        let p = acc.entry(job).or_insert_with(|| CachePoint {
            t_s: 0.0,
            job,
            hits: 0,
            misses: 0,
            hit_bytes: 0,
            miss_bytes: 0,
            prefetch_insert_bytes: 0,
            demand_insert_bytes: 0,
            evicted_bytes: 0,
        });
        update(p);
        p.t_s = e.t_s();
        out.entry(job).or_default().push(p.clone());
    }
    out
}

/// One shuffle-serving throughput bucket on a server node.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputPoint {
    pub t_s: f64,
    pub node: usize,
    pub bytes: u64,
    pub responses: u64,
    pub cache_hits: u64,
}

impl ThroughputPoint {
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_s\":{:.6},\"node\":{},\"bytes\":{},\"responses\":{},\"cache_hits\":{}}}",
            self.t_s, self.node, self.bytes, self.responses, self.cache_hits
        )
    }
}

/// Shuffle-throughput timeline per serving node: `ShuffleResponse` bytes
/// bucketed into `bucket_s`-wide bins.
pub fn shuffle_throughput(
    events: &[ObsEvent],
    bucket_s: f64,
) -> BTreeMap<usize, Vec<ThroughputPoint>> {
    let mut out: BTreeMap<usize, BTreeMap<u64, ThroughputPoint>> = BTreeMap::new();
    for e in events {
        if let Ev::ShuffleResponse {
            node,
            bytes,
            from_cache,
            ..
        } = &e.ev
        {
            let bucket = (e.t_s() / bucket_s) as u64;
            let p = out
                .entry(*node)
                .or_default()
                .entry(bucket)
                .or_insert_with(|| ThroughputPoint {
                    t_s: bucket as f64 * bucket_s,
                    node: *node,
                    bytes: 0,
                    responses: 0,
                    cache_hits: 0,
                });
            p.bytes += bytes;
            p.responses += 1;
            if *from_cache {
                p.cache_hits += 1;
            }
        }
    }
    out.into_iter()
        .map(|(node, buckets)| (node, buckets.into_values().collect()))
        .collect()
}

/// Heartbeat-interval histogram (seconds between consecutive heartbeats,
/// pooled over all nodes).
pub fn heartbeat_intervals(events: &[ObsEvent]) -> Histogram {
    let mut last: BTreeMap<usize, f64> = BTreeMap::new();
    let mut h = Histogram::new();
    for e in events {
        if let Ev::Heartbeat { node, .. } = &e.ev {
            let t = e.t_s();
            if let Some(prev) = last.insert(*node, t) {
                h.record(t - prev);
            }
        }
    }
    h
}

/// Server-side shuffle-serve latency histogram (seconds per `serve()` call).
pub fn shuffle_latencies(events: &[ObsEvent]) -> Histogram {
    let mut h = Histogram::new();
    for e in events {
        if let Ev::ShuffleResponse { serve_ns, .. } = &e.ev {
            h.record(*serve_ns as f64 / 1e9);
        }
    }
    h
}

/// Job → capacity-queue (tenant) mapping from `JobQueued` events. Jobs that
/// never saw a `JobQueued` (Fifo/Fair runs, or streams from before the
/// service mode existed) fold into tenant 0 by the callers below.
pub fn job_tenants(events: &[ObsEvent]) -> BTreeMap<u32, u32> {
    let mut out = BTreeMap::new();
    for e in events {
        if let Ev::JobQueued { job, queue } = &e.ev {
            out.insert(*job, *queue);
        }
    }
    out
}

/// Per-tenant job-latency rollup over one event stream.
#[derive(Debug, Clone, Default)]
pub struct TenantLatency {
    /// Jobs that finished (latency samples recorded).
    pub jobs: u64,
    /// Queue wait: `Submitted` → `FirstLaunch`, seconds.
    pub wait: Histogram,
    /// End-to-end job latency: `Submitted` → `Finished`, seconds.
    pub latency: Histogram,
}

/// Fold `JobState` lifecycle events into per-tenant wait/latency histograms.
/// Tenancy comes from [`job_tenants`]; unmapped jobs land in tenant 0.
pub fn tenant_latency(events: &[ObsEvent]) -> BTreeMap<u32, TenantLatency> {
    let tenants = job_tenants(events);
    let mut submitted: BTreeMap<u32, f64> = BTreeMap::new();
    let mut launched: BTreeMap<u32, f64> = BTreeMap::new();
    let mut out: BTreeMap<u32, TenantLatency> = BTreeMap::new();
    for e in events {
        if let Ev::JobState { job, state } = &e.ev {
            match state {
                crate::event::JobState::Submitted => {
                    submitted.insert(*job, e.t_s());
                }
                crate::event::JobState::FirstLaunch => {
                    launched.insert(*job, e.t_s());
                }
                crate::event::JobState::MapsDone => {}
                crate::event::JobState::Finished => {
                    let Some(sub) = submitted.get(job) else {
                        continue;
                    };
                    let tenant = tenants.get(job).copied().unwrap_or(0);
                    let tl = out.entry(tenant).or_default();
                    tl.jobs += 1;
                    tl.latency.record(e.t_s() - sub);
                    if let Some(fl) = launched.get(job) {
                        tl.wait.record(fl - sub);
                    }
                }
            }
        }
    }
    out
}

/// Tenant x time heatmap: one row per capacity queue, columns are time
/// buckets. The same exporter serves the recovery-disruption view (cells
/// count lost/re-executed attempts) and the latency view (cells are mean
/// finished-job latency) — only the cell semantics differ.
#[derive(Debug, Clone)]
pub struct TenantHeatmap {
    /// What the cells mean ("lost attempts", "mean latency (s)").
    pub what: String,
    pub t0_s: f64,
    pub bucket_s: f64,
    /// Row labels: the tenant (queue) ids present, sorted.
    pub tenants: Vec<u32>,
    /// `rows[i][bucket]` for tenant `tenants[i]`.
    pub rows: Vec<Vec<f64>>,
}

impl TenantHeatmap {
    pub fn n_buckets(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// ASCII rendering mirroring [`Heatmap::to_ascii`]: one row per tenant,
    /// shaded against the hottest cell.
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.rows.iter().flatten().fold(0.0f64, |m, &v| m.max(v));
        let mut out = String::new();
        out.push_str(&format!(
            "{} — {} tenants x {} buckets of {:.2}s (max {:.3})\n",
            self.what,
            self.tenants.len(),
            self.n_buckets(),
            self.bucket_s,
            max
        ));
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("tenant{:>3} |", self.tenants[i]));
            for &v in row {
                let shade = if max > 0.0 {
                    ((v / max) * (RAMP.len() - 1) as f64).round() as usize
                } else {
                    0
                };
                out.push(RAMP[shade.min(RAMP.len() - 1)] as char);
            }
            out.push_str("|\n");
        }
        out
    }

    pub fn to_json(&self) -> String {
        let tenants: Vec<String> = self.tenants.iter().map(u32::to_string).collect();
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        format!(
            "{{\"what\":\"{}\",\"t0_s\":{:.6},\"bucket_s\":{:.6},\"tenants\":[{}],\"buckets\":{},\"rows\":[{}]}}",
            self.what,
            self.t0_s,
            self.bucket_s,
            tenants.join(","),
            self.n_buckets(),
            rows.join(",")
        )
    }
}

/// Envelope of the whole stream, for bucketing tenant heatmaps.
fn stream_envelope(events: &[ObsEvent]) -> Option<(f64, f64)> {
    let lo = events.first()?.t_s();
    let hi = events.last()?.t_s();
    (hi > lo).then_some((lo, hi))
}

fn empty_tenant_heatmap(what: &str, tenants: Vec<u32>) -> TenantHeatmap {
    let n = tenants.len();
    TenantHeatmap {
        what: what.to_string(),
        t0_s: 0.0,
        bucket_s: 1.0,
        tenants,
        rows: vec![Vec::new(); n],
    }
}

/// Recovery-disruption heatmap: for each tenant, how many of its running
/// attempts were lost to node failures (`AttemptLost`) or had completed map
/// outputs invalidated (`MapReExecute`) per time bucket. Built purely from
/// events the chaos runs already emit.
pub fn tenant_recovery_heatmap(events: &[ObsEvent], n_buckets: usize) -> TenantHeatmap {
    let tenants_of = job_tenants(events);
    let mut ids: Vec<u32> = tenants_of.values().copied().collect();
    ids.push(0); // unmapped jobs fold here
    ids.sort_unstable();
    ids.dedup();
    let what = "recovery disruptions (lost + re-executed attempts)";
    let Some((lo, hi)) = stream_envelope(events) else {
        return empty_tenant_heatmap(what, ids);
    };
    if n_buckets == 0 {
        return empty_tenant_heatmap(what, ids);
    }
    let bucket_s = (hi - lo) / n_buckets as f64;
    let mut rows = vec![vec![0.0f64; n_buckets]; ids.len()];
    for e in events {
        let job = match &e.ev {
            Ev::AttemptLost { job, .. } => *job,
            Ev::MapReExecute { job, .. } => *job,
            _ => continue,
        };
        let tenant = tenants_of.get(&job).copied().unwrap_or(0);
        let row = ids.binary_search(&tenant).expect("tenant id collected");
        let b = (((e.t_s() - lo) / bucket_s) as usize).min(n_buckets - 1);
        rows[row][b] += 1.0;
    }
    TenantHeatmap {
        what: what.to_string(),
        t0_s: lo,
        bucket_s,
        tenants: ids,
        rows,
    }
}

/// Latency heatmap: for each tenant, the mean end-to-end latency of jobs
/// *finishing* in each time bucket — the service-mode view of "who is slow
/// right now", complementing the scalar histograms from [`tenant_latency`].
pub fn tenant_latency_heatmap(events: &[ObsEvent], n_buckets: usize) -> TenantHeatmap {
    let tenants_of = job_tenants(events);
    let mut ids: Vec<u32> = tenants_of.values().copied().collect();
    ids.push(0);
    ids.sort_unstable();
    ids.dedup();
    let what = "mean job latency (s) by finish bucket";
    let Some((lo, hi)) = stream_envelope(events) else {
        return empty_tenant_heatmap(what, ids);
    };
    if n_buckets == 0 {
        return empty_tenant_heatmap(what, ids);
    }
    let bucket_s = (hi - lo) / n_buckets as f64;
    let mut sums = vec![vec![0.0f64; n_buckets]; ids.len()];
    let mut counts = vec![vec![0u64; n_buckets]; ids.len()];
    let mut submitted: BTreeMap<u32, f64> = BTreeMap::new();
    for e in events {
        if let Ev::JobState { job, state } = &e.ev {
            match state {
                crate::event::JobState::Submitted => {
                    submitted.insert(*job, e.t_s());
                }
                crate::event::JobState::Finished => {
                    let Some(sub) = submitted.get(job) else {
                        continue;
                    };
                    let tenant = tenants_of.get(job).copied().unwrap_or(0);
                    let row = ids.binary_search(&tenant).expect("tenant id collected");
                    let b = (((e.t_s() - lo) / bucket_s) as usize).min(n_buckets - 1);
                    sums[row][b] += e.t_s() - sub;
                    counts[row][b] += 1;
                }
                _ => {}
            }
        }
    }
    let rows = sums
        .into_iter()
        .zip(counts)
        .map(|(srow, crow)| {
            srow.into_iter()
                .zip(crow)
                .map(|(s, c)| if c == 0 { 0.0 } else { s / c as f64 })
                .collect()
        })
        .collect();
    TenantHeatmap {
        what: what.to_string(),
        t0_s: lo,
        bucket_s,
        tenants: ids,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AttemptOutcome, TaskFlavor};

    fn span(node: usize, start_s: f64, end_s: f64) -> Span {
        Span {
            node,
            job: 0,
            kind: TaskFlavor::Map,
            idx: 0,
            start_s,
            end_s,
            outcome: AttemptOutcome::Completed,
        }
    }

    fn at(t_s: f64, ev: Ev) -> ObsEvent {
        ObsEvent {
            t_ns: (t_s * 1e9) as u64,
            ev,
        }
    }

    #[test]
    fn heatmap_distributes_span_time_across_buckets() {
        // One span covering [0, 10) on node 0 of 2; 5 buckets of 2s.
        let hm = slot_heatmap(&[span(0, 0.0, 10.0)], 2, 5);
        assert_eq!(hm.rows.len(), 2);
        assert_eq!(hm.n_buckets(), 5);
        for b in 0..5 {
            assert!((hm.rows[0][b] - 1.0).abs() < 1e-9, "bucket {b}");
            assert_eq!(hm.rows[1][b], 0.0);
        }
        let ascii = hm.to_ascii();
        assert!(ascii.contains("node  0"));
        assert!(ascii.lines().count() >= 3);
        let json = hm.to_json();
        assert!(json.contains("\"nodes\":2"));
        assert!(json.contains("\"buckets\":5"));
    }

    #[test]
    fn heatmap_partial_overlap_is_fractional() {
        // Span [0, 1) in a 2s bucket → 0.5 mean occupancy; envelope [0,4).
        let hm = slot_heatmap(&[span(0, 0.0, 1.0), span(0, 3.9, 4.0)], 1, 2);
        assert!((hm.rows[0][0] - 0.5).abs() < 1e-9);
        assert!((hm.rows[0][1] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn empty_heatmap_is_harmless() {
        let hm = slot_heatmap(&[], 3, 10);
        assert_eq!(hm.rows.len(), 3);
        assert_eq!(hm.node_stride, 1);
        assert_eq!(hm.n_buckets(), 0);
        assert!(!hm.to_ascii().is_empty());
        assert!(hm.to_json().starts_with('{'));
    }

    #[test]
    fn heatmap_node_axis_is_capped_at_scale() {
        // 1024 nodes fold 4-to-a-row: output stays O(256 x buckets), and a
        // row's cell is the *per-node* mean over its group so shading stays
        // comparable with small clusters.
        let spans: Vec<Span> = (0..1024).map(|n| span(n, 0.0, 10.0)).collect();
        let hm = slot_heatmap(&spans, 1024, 8);
        assert_eq!(hm.node_stride, 4);
        assert_eq!(hm.rows.len(), 256);
        for row in &hm.rows {
            for &v in row {
                assert!((v - 1.0).abs() < 1e-9);
            }
        }
        assert!(hm.to_json().contains("\"node_stride\":4"));

        // A short last group still averages over its real size.
        let spans: Vec<Span> = (0..257).map(|n| span(n, 0.0, 2.0)).collect();
        let hm = slot_heatmap(&spans, 257, 2);
        assert_eq!(hm.node_stride, 2);
        assert_eq!(hm.rows.len(), 129);
        assert!((hm.rows[128][0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn queue_traces_group_by_node() {
        let events = vec![
            at(
                1.0,
                Ev::Heartbeat {
                    node: 0,
                    active_jobs: 1,
                    pending_maps: 5,
                    pending_reduces: 2,
                    free_map_slots: 0,
                    free_reduce_slots: 2,
                },
            ),
            at(
                1.5,
                Ev::Heartbeat {
                    node: 1,
                    active_jobs: 1,
                    pending_maps: 3,
                    pending_reduces: 2,
                    free_map_slots: 1,
                    free_reduce_slots: 2,
                },
            ),
            at(
                2.0,
                Ev::Heartbeat {
                    node: 0,
                    active_jobs: 1,
                    pending_maps: 1,
                    pending_reduces: 2,
                    free_map_slots: 0,
                    free_reduce_slots: 2,
                },
            ),
        ];
        let traces = queue_depth_traces(&events);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[&0].len(), 2);
        assert_eq!(traces[&1].len(), 1);
        assert_eq!(traces[&0][1].pending_maps, 1);
        assert!(traces[&0][0].to_json().contains("\"pending_maps\":5"));

        let h = heartbeat_intervals(&events);
        assert_eq!(h.count(), 1); // only node 0 has two beats
        assert!((h.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cache_pressure_accumulates_per_job() {
        let events = vec![
            at(
                1.0,
                Ev::CacheInsert {
                    node: 0,
                    job: 7,
                    map_idx: 0,
                    bytes: 100,
                    demand: false,
                },
            ),
            at(
                2.0,
                Ev::CacheHit {
                    node: 0,
                    job: 7,
                    map_idx: 0,
                    bytes: 100,
                },
            ),
            at(
                3.0,
                Ev::CacheMiss {
                    node: 0,
                    job: 7,
                    map_idx: 1,
                    bytes: 50,
                },
            ),
            at(
                4.0,
                Ev::CacheInsert {
                    node: 0,
                    job: 7,
                    map_idx: 1,
                    bytes: 50,
                    demand: true,
                },
            ),
            at(
                5.0,
                Ev::CacheEvict {
                    node: 0,
                    job: 7,
                    map_idx: 0,
                    bytes: 100,
                },
            ),
        ];
        let series = cache_pressure(&events);
        let pts = &series[&7];
        assert_eq!(pts.len(), 5);
        let last = pts.last().unwrap();
        assert_eq!(last.hits, 1);
        assert_eq!(last.misses, 1);
        assert_eq!(last.prefetch_insert_bytes, 100);
        assert_eq!(last.demand_insert_bytes, 50);
        assert_eq!(last.evicted_bytes, 100);
        assert!((last.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn throughput_buckets_responses_per_server() {
        let resp = |t_s: f64, node: usize, bytes: u64, from_cache: bool| {
            at(
                t_s,
                Ev::ShuffleResponse {
                    node,
                    job: 0,
                    map_idx: 0,
                    reduce: 0,
                    bytes,
                    records: 1,
                    from_cache,
                    serve_ns: 2_000_000,
                },
            )
        };
        let events = vec![
            resp(0.1, 0, 1000, true),
            resp(0.9, 0, 1000, false),
            resp(1.5, 0, 500, false),
            resp(0.2, 1, 300, false),
        ];
        let tl = shuffle_throughput(&events, 1.0);
        assert_eq!(tl[&0].len(), 2);
        assert_eq!(tl[&0][0].bytes, 2000);
        assert_eq!(tl[&0][0].responses, 2);
        assert_eq!(tl[&0][0].cache_hits, 1);
        assert_eq!(tl[&0][1].bytes, 500);
        assert_eq!(tl[&1][0].bytes, 300);

        let lat = shuffle_latencies(&events);
        assert_eq!(lat.count(), 4);
        assert!((lat.mean() - 0.002).abs() < 1e-9);
    }

    use crate::event::JobState as Js;

    fn job_ev(t_s: f64, job: u32, state: Js) -> ObsEvent {
        at(t_s, Ev::JobState { job, state })
    }

    #[test]
    fn tenant_latency_splits_by_queue() {
        // Job 0 → tenant 1 (queued), job 1 unmapped → tenant 0.
        let events = vec![
            at(0.0, Ev::JobQueued { job: 0, queue: 1 }),
            job_ev(0.0, 0, Js::Submitted),
            job_ev(1.0, 1, Js::Submitted),
            job_ev(2.0, 0, Js::FirstLaunch),
            job_ev(3.0, 1, Js::FirstLaunch),
            job_ev(10.0, 0, Js::Finished),
            job_ev(21.0, 1, Js::Finished),
        ];
        let tl = tenant_latency(&events);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl[&1].jobs, 1);
        assert!((tl[&1].latency.mean() - 10.0).abs() < 1e-9);
        assert!((tl[&1].wait.mean() - 2.0).abs() < 1e-9);
        assert_eq!(tl[&0].jobs, 1);
        assert!((tl[&0].latency.mean() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_heatmap_counts_disruptions_per_tenant() {
        let events = vec![
            at(0.0, Ev::JobQueued { job: 5, queue: 2 }),
            at(
                1.0,
                Ev::AttemptLost {
                    node: 0,
                    job: 5,
                    kind: TaskFlavor::Map,
                    idx: 0,
                },
            ),
            at(
                3.0,
                Ev::MapReExecute {
                    node: 0,
                    job: 9, // unmapped → tenant 0
                    idx: 1,
                },
            ),
            at(4.0, Ev::NodeDown { node: 0 }),
        ];
        let hm = tenant_recovery_heatmap(&events, 2);
        assert_eq!(hm.tenants, vec![0, 2]);
        // Envelope [0,4): tenant 2 lost one attempt at t=1 (bucket 0),
        // tenant 0 re-executed one map at t=3 (bucket 1).
        assert!((hm.rows[1][0] - 1.0).abs() < 1e-9);
        assert!((hm.rows[0][1] - 1.0).abs() < 1e-9);
        assert!(hm.to_ascii().contains("tenant  2"));
        assert!(hm.to_json().contains("\"tenants\":[0,2]"));
    }

    #[test]
    fn latency_heatmap_means_by_finish_bucket() {
        let events = vec![
            at(0.0, Ev::JobQueued { job: 0, queue: 1 }),
            job_ev(0.0, 0, Js::Submitted),
            job_ev(0.5, 1, Js::Submitted),
            job_ev(4.0, 0, Js::Finished), // tenant 1, latency 4, bucket 0
            job_ev(10.0, 1, Js::Finished), // tenant 0, latency 9.5, bucket 1
        ];
        let hm = tenant_latency_heatmap(&events, 2);
        assert_eq!(hm.tenants, vec![0, 1]);
        assert!((hm.rows[1][0] - 4.0).abs() < 1e-9);
        assert!((hm.rows[0][1] - 9.5).abs() < 1e-9);
        assert_eq!(hm.rows[0][0], 0.0);
    }

    #[test]
    fn tenant_heatmaps_tolerate_empty_streams() {
        let hm = tenant_recovery_heatmap(&[], 8);
        assert_eq!(hm.tenants, vec![0]);
        assert_eq!(hm.n_buckets(), 0);
        assert!(!hm.to_ascii().is_empty());
        assert!(tenant_latency_heatmap(&[], 8).to_json().starts_with('{'));
        assert!(tenant_latency(&[]).is_empty());
    }
}
