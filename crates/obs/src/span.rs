//! Attempt spans: pairing start/finish events and the swimlane/occupancy
//! arithmetic shared with `rmr_core::timeline`.

use std::collections::{BTreeMap, VecDeque};

use crate::event::{AttemptOutcome, Ev, ObsEvent, TaskFlavor};

/// One task attempt rendered as a closed interval on a node.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub node: usize,
    pub job: u32,
    pub kind: TaskFlavor,
    pub idx: usize,
    pub start_s: f64,
    pub end_s: f64,
    pub outcome: AttemptOutcome,
}

impl Span {
    pub fn duration_s(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// Pair `AttemptStart`/`AttemptFinish` events into spans.
///
/// Attempts are matched FIFO per `(node, job, kind, idx)` key (speculative
/// re-execution can start a second attempt with the same key before the
/// first finishes). Unfinished attempts are dropped — callers working from a
/// completed run never see any.
pub fn spans_from_events(events: &[ObsEvent]) -> Vec<Span> {
    let mut open: BTreeMap<(usize, u32, TaskFlavor, usize), VecDeque<f64>> = BTreeMap::new();
    let mut spans = Vec::new();
    for e in events {
        match &e.ev {
            Ev::AttemptStart {
                node,
                job,
                kind,
                idx,
            } => {
                open.entry((*node, *job, *kind, *idx))
                    .or_default()
                    .push_back(e.t_s());
            }
            Ev::AttemptFinish {
                node,
                job,
                kind,
                idx,
                outcome,
            } => {
                if let Some(start_s) = open
                    .get_mut(&(*node, *job, *kind, *idx))
                    .and_then(|q| q.pop_front())
                {
                    spans.push(Span {
                        node: *node,
                        job: *job,
                        kind: *kind,
                        idx: *idx,
                        start_s,
                        end_s: e.t_s(),
                        outcome: *outcome,
                    });
                }
            }
            _ => {}
        }
    }
    spans
}

/// Mean number of concurrently-running attempts of `kind` (all kinds when
/// `None`), averaged over the envelope of *all* spans.
///
/// This is the single implementation of the swimlane-occupancy figure: the
/// envelope `[lo, hi]` spans every attempt regardless of kind, while busy
/// time sums only the filtered ones — so `mean_concurrency(spans, Reduce)`
/// on a map-only window is 0, not NaN. Degenerate envelopes return 0.
pub fn mean_concurrency(spans: &[Span], kind: Option<TaskFlavor>) -> f64 {
    let (lo, hi) = spans.iter().fold((f64::MAX, f64::MIN), |(lo, hi), s| {
        (lo.min(s.start_s), hi.max(s.end_s))
    });
    if hi <= lo {
        return 0.0;
    }
    let busy: f64 = spans
        .iter()
        .filter(|s| kind.is_none_or(|k| s.kind == k))
        .map(Span::duration_s)
        .sum();
    busy / (hi - lo)
}

/// Assign each span a lane (per node and flavor) such that overlapping spans
/// on the same node never share a lane — the Chrome-trace "thread" layout.
/// Returns lane indices parallel to `spans`; lanes are reused greedily in
/// first-fit order so the track count equals peak concurrency.
pub fn assign_lanes(spans: &[Span]) -> Vec<usize> {
    // Sort indices by (node, kind, start) so first-fit packing is stable.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        let sa = &spans[a];
        let sb = &spans[b];
        (sa.node, sa.kind)
            .cmp(&(sb.node, sb.kind))
            .then(sa.start_s.total_cmp(&sb.start_s))
            .then((sa.idx, a).cmp(&(sb.idx, b)))
    });
    let mut lanes = vec![0usize; spans.len()];
    // Per (node, kind): the end time of the last span placed in each lane.
    let mut free_at: BTreeMap<(usize, TaskFlavor), Vec<f64>> = BTreeMap::new();
    for i in order {
        let s = &spans[i];
        let ends = free_at.entry((s.node, s.kind)).or_default();
        let lane = ends
            .iter()
            .position(|&end| end <= s.start_s)
            .unwrap_or(ends.len());
        if lane == ends.len() {
            ends.push(s.end_s);
        } else {
            ends[lane] = s.end_s;
        }
        lanes[i] = lane;
    }
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_s: f64, ev: Ev) -> ObsEvent {
        ObsEvent {
            t_ns: (t_s * 1e9) as u64,
            ev,
        }
    }

    fn start(t_s: f64, node: usize, idx: usize, kind: TaskFlavor) -> ObsEvent {
        ev(
            t_s,
            Ev::AttemptStart {
                node,
                job: 0,
                kind,
                idx,
            },
        )
    }

    fn finish(t_s: f64, node: usize, idx: usize, kind: TaskFlavor) -> ObsEvent {
        ev(
            t_s,
            Ev::AttemptFinish {
                node,
                job: 0,
                kind,
                idx,
                outcome: AttemptOutcome::Completed,
            },
        )
    }

    #[test]
    fn pairs_starts_and_finishes_fifo() {
        let events = vec![
            start(0.0, 0, 0, TaskFlavor::Map),
            start(1.0, 0, 0, TaskFlavor::Map), // speculative second attempt, same key
            finish(2.0, 0, 0, TaskFlavor::Map),
            finish(5.0, 0, 0, TaskFlavor::Map),
            start(9.0, 1, 1, TaskFlavor::Map), // never finishes → dropped
        ];
        let spans = spans_from_events(&events);
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].start_s, spans[0].end_s), (0.0, 2.0));
        assert_eq!((spans[1].start_s, spans[1].end_s), (1.0, 5.0));
    }

    #[test]
    fn mean_concurrency_matches_timeline_semantics() {
        // Two fully-overlapping 10s maps → concurrency 2 over a 10s envelope.
        let spans = spans_from_events(&[
            start(0.0, 0, 0, TaskFlavor::Map),
            start(0.0, 1, 1, TaskFlavor::Map),
            finish(10.0, 0, 0, TaskFlavor::Map),
            finish(10.0, 1, 1, TaskFlavor::Map),
        ]);
        assert!((mean_concurrency(&spans, Some(TaskFlavor::Map)) - 2.0).abs() < 1e-12);
        // No reduce spans at all → 0.0, not NaN.
        assert_eq!(mean_concurrency(&spans, Some(TaskFlavor::Reduce)), 0.0);
        assert_eq!(mean_concurrency(&[], None), 0.0);
    }

    #[test]
    fn lanes_never_overlap_within_a_node() {
        let spans = spans_from_events(&[
            start(0.0, 0, 0, TaskFlavor::Map),
            start(1.0, 0, 1, TaskFlavor::Map),
            finish(2.0, 0, 0, TaskFlavor::Map),
            start(2.0, 0, 2, TaskFlavor::Map), // reuses lane 0 (ends at exactly 2.0)
            finish(3.0, 0, 1, TaskFlavor::Map),
            finish(4.0, 0, 2, TaskFlavor::Map),
        ]);
        let lanes = assign_lanes(&spans);
        assert_eq!(lanes.len(), 3);
        // Overlapping spans get distinct lanes.
        for i in 0..spans.len() {
            for j in (i + 1)..spans.len() {
                let (a, b) = (&spans[i], &spans[j]);
                let overlap = a.start_s < b.end_s && b.start_s < a.end_s;
                if overlap && a.node == b.node && a.kind == b.kind {
                    assert_ne!(lanes[i], lanes[j], "spans {i} and {j} share a lane");
                }
            }
        }
        // Peak concurrency is 2, so only lanes {0, 1} are used.
        assert!(lanes.iter().all(|&l| l < 2));
    }
}
