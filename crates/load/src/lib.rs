//! # rmr-load — open-arrival service mode for the simulated cluster
//!
//! The paper (and the figure harness) measures one job at a time; this crate
//! drives the persistent [`rmr_core::Runtime`] as a *service*: seeded
//! arrival processes ([`Arrival`]: Poisson, diurnal time-varying rate, and a
//! closed loop for comparison), heavy-tailed job-size mixes ([`JobMix`]:
//! bounded-Pareto input sizes over TeraSort/Sort/WordCount), and per-tenant
//! submission streams that push thousands of jobs through `Runtime::submit`
//! under FIFO, fair, or multi-tenant capacity scheduling.
//!
//! Outputs are tail-latency first: per-tenant p50/p95/p99 job latency
//! (queue wait + execution) via [`rmr_des::Histogram`], fairness
//! (slot-second shares vs configured guarantees), makespan, and utilisation
//! — see [`ServiceReport`]. With `record_events` the obs stream feeds the
//! tenant heatmaps in `rmr_obs::aggregate`.
//!
//! Determinism: all sampling happens host-side before the simulation runs
//! (tenant-private RNGs, absolute submission instants, catalog datagen
//! before the first arrival), so a `(seed, spec)` pair replays bit-identical
//! trace hashes — enforced by this crate's tests and the bench gates.

pub mod arrival;
pub mod mix;
pub mod report;
pub mod service;

pub use arrival::{tenant_rng, Arrival, Schedule};
pub use mix::{BoundedPareto, JobKind, JobMix, JobSample};
pub use report::{ServiceReport, TenantReport};
pub use service::{run_service, ServicePolicy, ServiceSpec, TenantSpec, SERVICE_BLOCK};
