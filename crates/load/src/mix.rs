//! Heavy-tailed job-size mixes over the repo's benchmark workloads.
//!
//! Input sizes are drawn from a bounded Pareto (the classic heavy-tail model
//! for job sizes) and then snapped onto a small geometric ladder so that a
//! multi-thousand-job run shares a bounded catalog of pre-generated inputs
//! instead of generating one dataset per job.

use rand::rngs::SmallRng;
use rand::Rng;

/// Which benchmark job a sampled unit of work runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobKind {
    /// TeraSort over TeraGen input (100 B records, total-order partition).
    TeraSort,
    /// Sort over RandomWriter input (10–1000 B keys, hash partition).
    Sort,
    /// WordCount over generated text (real records; kept small).
    WordCount,
}

impl JobKind {
    pub fn label(self) -> &'static str {
        match self {
            JobKind::TeraSort => "terasort",
            JobKind::Sort => "sort",
            JobKind::WordCount => "wordcount",
        }
    }
}

/// Bounded Pareto over `[lo, hi]` with shape `alpha` (smaller = heavier
/// tail; `alpha < 2` gives the mice-and-elephants mix the scheduler work
/// needs to matter).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundedPareto {
    pub alpha: f64,
    pub lo: f64,
    pub hi: f64,
}

impl BoundedPareto {
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0 && lo > 0.0 && hi >= lo);
        BoundedPareto { alpha, lo, hi }
    }

    /// Inverse-CDF draw: `x = L (1 - u (1 - (L/H)^α))^(-1/α)`.
    pub fn sample(&self, rng: &mut SmallRng) -> f64 {
        let u: f64 = rng.gen();
        let ratio = (self.lo / self.hi).powf(self.alpha);
        self.lo * (1.0f64 - u * (1.0 - ratio)).powf(-1.0 / self.alpha)
    }
}

/// One sampled job: what to run and over how much input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JobSample {
    pub kind: JobKind,
    /// Input bytes, already quantized to the catalog ladder.
    pub input_bytes: u64,
}

/// A tenant's workload mix: job kinds with integer per-mille weights and a
/// heavy-tailed size distribution shared by all kinds.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMix {
    /// `(kind, weight_mille)`; weights must sum to 1000.
    pub kinds: Vec<(JobKind, u32)>,
    pub size: BoundedPareto,
    /// Rungs on the geometric size ladder between `size.lo` and `size.hi`
    /// (inclusive of both ends). Bounds the input catalog.
    pub size_steps: usize,
}

impl JobMix {
    pub fn new(kinds: &[(JobKind, u32)], size: BoundedPareto, size_steps: usize) -> Self {
        assert!(size_steps >= 1);
        let total: u32 = kinds.iter().map(|(_, w)| w).sum();
        assert_eq!(total, 1000, "kind weights must sum to 1000 per-mille");
        JobMix {
            kinds: kinds.to_vec(),
            size,
            size_steps,
        }
    }

    /// Snaps a raw size onto the nearest rung of the geometric ladder.
    pub fn quantize(&self, bytes: f64) -> u64 {
        if self.size_steps == 1 || self.size.hi <= self.size.lo {
            return self.size.lo as u64;
        }
        let lr = (bytes.max(self.size.lo).min(self.size.hi) / self.size.lo).ln();
        let span = (self.size.hi / self.size.lo).ln();
        let step = (lr / span * (self.size_steps - 1) as f64).round() as usize;
        let rung = self.size.lo * (span * step as f64 / (self.size_steps - 1) as f64).exp();
        rung.round() as u64
    }

    /// Every rung a quantized sample can land on (the catalog to pre-build).
    pub fn ladder(&self) -> Vec<u64> {
        (0..self.size_steps)
            .map(|i| {
                if self.size_steps == 1 {
                    self.size.lo as u64
                } else {
                    let span = (self.size.hi / self.size.lo).ln();
                    (self.size.lo * (span * i as f64 / (self.size_steps - 1) as f64).exp()).round()
                        as u64
                }
            })
            .collect()
    }

    /// Draws one job (kind by weighted choice, size by bounded Pareto).
    pub fn sample(&self, rng: &mut SmallRng) -> JobSample {
        let pick = rng.gen_range(0u32..1000);
        let mut acc = 0;
        let mut kind = self.kinds[0].0;
        for &(k, w) in &self.kinds {
            acc += w;
            if pick < acc {
                kind = k;
                break;
            }
        }
        let raw = self.size.sample(rng);
        JobSample {
            kind,
            input_bytes: self.quantize(raw),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::tenant_rng;

    #[test]
    fn bounded_pareto_respects_bounds_and_skew() {
        let bp = BoundedPareto::new(1.2, 1e6, 1e9);
        let mut rng = tenant_rng(5, 0);
        let draws: Vec<f64> = (0..2000).map(|_| bp.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&x| (1e6..=1e9).contains(&x)));
        // Heavy tail: the median sits far below the mean.
        let mut sorted = draws.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[1000];
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!(mean > 2.0 * median, "mean {mean} median {median}");
    }

    #[test]
    fn quantize_lands_on_ladder() {
        let mix = JobMix::new(
            &[(JobKind::TeraSort, 1000)],
            BoundedPareto::new(1.5, 16e6, 256e6),
            5,
        );
        let ladder = mix.ladder();
        assert_eq!(ladder.len(), 5);
        assert_eq!(ladder[0], 16_000_000);
        assert_eq!(*ladder.last().unwrap(), 256_000_000);
        let mut rng = tenant_rng(5, 1);
        for _ in 0..500 {
            let s = mix.sample(&mut rng);
            assert!(
                ladder.contains(&s.input_bytes),
                "{} off-ladder",
                s.input_bytes
            );
        }
    }

    #[test]
    fn kind_weights_are_respected() {
        let mix = JobMix::new(
            &[(JobKind::WordCount, 250), (JobKind::TeraSort, 750)],
            BoundedPareto::new(1.5, 1e6, 1e6),
            1,
        );
        let mut rng = tenant_rng(9, 2);
        let n = 2000;
        let wc = (0..n)
            .filter(|_| mix.sample(&mut rng).kind == JobKind::WordCount)
            .count();
        let frac = wc as f64 / n as f64;
        assert!((0.18..0.32).contains(&frac), "wordcount fraction {frac}");
    }

    #[test]
    fn single_rung_mix_is_constant_size() {
        let mix = JobMix::new(
            &[(JobKind::Sort, 1000)],
            BoundedPareto::new(2.0, 64e6, 64e6),
            1,
        );
        let mut rng = tenant_rng(1, 0);
        for _ in 0..50 {
            assert_eq!(mix.sample(&mut rng).input_bytes, 64_000_000);
        }
    }
}
