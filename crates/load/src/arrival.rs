//! Seeded arrival processes for the open-loop service driver.
//!
//! Every process is sampled *up front* from a tenant-private RNG into a
//! concrete schedule before the simulation starts, so arrival randomness
//! never interleaves with simulation randomness: the same `(seed, spec)`
//! always produces the same submission instants regardless of what the
//! cluster does in between.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How a tenant's jobs arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// Open loop, exponential inter-arrivals at a constant `rate_hz`.
    Poisson { rate_hz: f64 },
    /// Open loop, time-varying sinusoidal rate ("diurnal" traffic): the
    /// instantaneous rate swings between `base_hz` and `peak_hz` over
    /// `period_s`, starting at the trough. Sampled by thinning a Poisson
    /// process at `peak_hz`.
    Diurnal {
        base_hz: f64,
        peak_hz: f64,
        period_s: f64,
    },
    /// Closed loop for comparison: each job is submitted one exponential
    /// think time (mean `think_s`) after the previous job *finishes*.
    Closed { think_s: f64 },
}

/// A fully-sampled submission plan for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Absolute submission instants, seconds, non-decreasing.
    Open(Vec<f64>),
    /// Think times, seconds: gap between one job's completion and the next
    /// job's submission.
    Closed(Vec<f64>),
}

impl Schedule {
    pub fn len(&self) -> usize {
        match self {
            Schedule::Open(v) | Schedule::Closed(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One exponential draw with the given rate (inverse-CDF over `[0,1)`).
fn exp_draw(rng: &mut SmallRng, rate_hz: f64) -> f64 {
    let u: f64 = rng.gen();
    -(1.0f64 - u).ln() / rate_hz
}

impl Arrival {
    /// Samples `n` arrivals into a concrete [`Schedule`].
    pub fn sample(&self, n: usize, rng: &mut SmallRng) -> Schedule {
        match *self {
            Arrival::Poisson { rate_hz } => {
                assert!(rate_hz > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                Schedule::Open(
                    (0..n)
                        .map(|_| {
                            t += exp_draw(rng, rate_hz);
                            t
                        })
                        .collect(),
                )
            }
            Arrival::Diurnal {
                base_hz,
                peak_hz,
                period_s,
            } => {
                assert!(peak_hz >= base_hz && base_hz >= 0.0 && peak_hz > 0.0);
                assert!(period_s > 0.0);
                let mut t = 0.0;
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    t += exp_draw(rng, peak_hz);
                    // Instantaneous rate, trough at t = 0.
                    let phase = (2.0 * std::f64::consts::PI * t / period_s).cos();
                    let rate = base_hz + (peak_hz - base_hz) * 0.5 * (1.0 - phase);
                    let u: f64 = rng.gen();
                    if u < rate / peak_hz {
                        out.push(t);
                    }
                }
                Schedule::Open(out)
            }
            Arrival::Closed { think_s } => {
                assert!(think_s > 0.0, "think time must be positive");
                Schedule::Closed((0..n).map(|_| exp_draw(rng, 1.0 / think_s)).collect())
            }
        }
    }
}

/// Tenant-private RNG: decorrelates tenants without consuming draws from
/// each other's streams (adding a tenant never shifts another's schedule).
pub fn tenant_rng(seed: u64, queue: u32) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(queue as u64 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_sorted_and_deterministic() {
        let a = Arrival::Poisson { rate_hz: 2.0 };
        let s1 = a.sample(500, &mut tenant_rng(7, 0));
        let s2 = a.sample(500, &mut tenant_rng(7, 0));
        assert_eq!(s1, s2);
        let Schedule::Open(times) = s1 else {
            panic!("poisson is open-loop")
        };
        assert_eq!(times.len(), 500);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival ≈ 1/rate within a loose tolerance.
        let mean = times.last().unwrap() / 500.0;
        assert!((0.3..0.8).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn tenants_are_decorrelated() {
        let a = Arrival::Poisson { rate_hz: 2.0 };
        let s0 = a.sample(50, &mut tenant_rng(7, 0));
        let s1 = a.sample(50, &mut tenant_rng(7, 1));
        assert_ne!(s0, s1);
    }

    #[test]
    fn diurnal_concentrates_arrivals_at_the_peak() {
        // Trough at phase 0, peak at period/2: with base ≈ 0 nearly all
        // arrivals in the first period should land in its middle half.
        let a = Arrival::Diurnal {
            base_hz: 0.01,
            peak_hz: 10.0,
            period_s: 100.0,
        };
        let Schedule::Open(times) = a.sample(400, &mut tenant_rng(3, 1)) else {
            panic!("diurnal is open-loop")
        };
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let first_period: Vec<f64> = times.iter().copied().filter(|&t| t < 100.0).collect();
        let mid = first_period
            .iter()
            .filter(|&&t| (25.0..75.0).contains(&t))
            .count();
        assert!(
            mid as f64 > 0.8 * first_period.len() as f64,
            "{mid} of {} arrivals in the middle half",
            first_period.len()
        );
    }

    #[test]
    fn closed_schedule_is_think_gaps() {
        let a = Arrival::Closed { think_s: 4.0 };
        let s = a.sample(200, &mut tenant_rng(11, 2));
        let Schedule::Closed(gaps) = s else {
            panic!("closed-loop")
        };
        assert_eq!(gaps.len(), 200);
        assert!(gaps.iter().all(|&g| g >= 0.0));
        let mean = gaps.iter().sum::<f64>() / 200.0;
        assert!((2.0..6.0).contains(&mean), "mean think {mean}");
    }
}
