//! Service-run reports: per-tenant latency histograms, fairness shares,
//! and the scalar outputs the bench harness turns into rows.

use rmr_des::Histogram;

use crate::service::ServicePolicy;

/// Latency/fairness rollup for one tenant.
#[derive(Debug, Clone)]
pub struct TenantReport {
    pub queue: u32,
    /// Per-mille slot guarantee the run was configured with (0 under FIFO).
    pub share_mille: u32,
    /// Finished jobs.
    pub jobs: usize,
    /// End-to-end job latency: submission → finish, seconds.
    pub latency: Histogram,
    /// Queue wait: submission → first attempt launch, seconds.
    pub wait: Histogram,
    /// Execution: first launch → finish, seconds.
    pub exec: Histogram,
    /// Slot-seconds all the tenant's attempts consumed.
    pub slot_secs: f64,
    /// Fraction of the run's total slot-seconds this tenant got.
    pub slot_share: f64,
}

impl TenantReport {
    pub fn new(queue: u32, share_mille: u32) -> Self {
        TenantReport {
            queue,
            share_mille,
            jobs: 0,
            latency: Histogram::new(),
            wait: Histogram::new(),
            exec: Histogram::new(),
            slot_secs: 0.0,
            slot_share: 0.0,
        }
    }

    /// One flat JSON object for artifact export.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"tenant\":{},\"share_mille\":{},\"jobs\":{},\
             \"latency_p50_s\":{:.6},\"latency_p95_s\":{:.6},\"latency_p99_s\":{:.6},\
             \"latency_mean_s\":{:.6},\"latency_max_s\":{:.6},\
             \"wait_p50_s\":{:.6},\"wait_p99_s\":{:.6},\
             \"exec_p50_s\":{:.6},\"exec_p99_s\":{:.6},\
             \"slot_secs\":{:.3},\"slot_share\":{:.4}}}",
            self.queue,
            self.share_mille,
            self.jobs,
            self.latency.p50(),
            self.latency.p95(),
            self.latency.p99(),
            self.latency.mean(),
            self.latency.max(),
            self.wait.p50(),
            self.wait.p99(),
            self.exec.p50(),
            self.exec.p99(),
            self.slot_secs,
            self.slot_share,
        )
    }
}

/// Whole-run report.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    pub policy: ServicePolicy,
    pub nodes: usize,
    pub seed: u64,
    /// Total finished jobs across tenants.
    pub jobs: usize,
    /// Per-tenant rollups, sorted by queue id.
    pub tenants: Vec<TenantReport>,
    /// Virtual time of the last job finish, seconds.
    pub makespan_s: f64,
    /// Slot-seconds used / slot-seconds offered over the makespan.
    pub utilization: f64,
    /// Replay fingerprint of the whole run.
    pub trace_hash: u64,
    pub events_fired: u64,
    pub polls: u64,
    /// `Runtime::state_footprint().total()` after all joins (0 = no leak).
    pub footprint_total: usize,
    /// The obs event stream, when the spec asked for recording.
    pub events: Vec<rmr_obs::ObsEvent>,
}

impl ServiceReport {
    pub fn tenant(&self, queue: u32) -> &TenantReport {
        self.tenants
            .iter()
            .find(|t| t.queue == queue)
            .expect("unknown tenant queue")
    }

    pub fn policy_label(&self) -> &'static str {
        match self.policy {
            ServicePolicy::Fifo => "fifo",
            ServicePolicy::Fair => "fair",
            ServicePolicy::Capacity { preempt: false } => "cap",
            ServicePolicy::Capacity { preempt: true } => "cap+preempt",
        }
    }

    /// Human-readable summary table.
    pub fn to_ascii(&self) -> String {
        let mut out = format!(
            "service {} — {} jobs / {} nodes, makespan {:.1}s, utilization {:.1}%\n\
             tenant  share  jobs   p50      p95      p99      wait-p99  slot-share\n",
            self.policy_label(),
            self.jobs,
            self.nodes,
            self.makespan_s,
            self.utilization * 100.0,
        );
        for t in &self.tenants {
            out.push_str(&format!(
                "t{:<5}  {:>4}‰  {:>4}  {:>7.1}s {:>7.1}s {:>7.1}s {:>8.1}s  {:>6.1}%\n",
                t.queue,
                t.share_mille,
                t.jobs,
                t.latency.p50(),
                t.latency.p95(),
                t.latency.p99(),
                t.wait.p99(),
                t.slot_share * 100.0,
            ));
        }
        out
    }

    /// One JSON line per tenant (latency-histogram artifact export).
    pub fn tenants_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            out.push_str(&t.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_and_exports() {
        let mut t = TenantReport::new(1, 700);
        for i in 0..100 {
            t.jobs += 1;
            t.latency.record(1.0 + i as f64);
            t.wait.record(0.5);
            t.exec.record(0.5 + i as f64);
            t.slot_secs += 8.0;
        }
        t.slot_share = 1.0;
        let rep = ServiceReport {
            policy: ServicePolicy::Capacity { preempt: true },
            nodes: 4,
            seed: 42,
            jobs: 100,
            tenants: vec![t],
            makespan_s: 120.0,
            utilization: 0.5,
            trace_hash: 7,
            events_fired: 1,
            polls: 1,
            footprint_total: 0,
            events: Vec::new(),
        };
        assert_eq!(rep.policy_label(), "cap+preempt");
        assert_eq!(rep.tenant(1).jobs, 100);
        let ascii = rep.to_ascii();
        assert!(ascii.contains("cap+preempt"));
        assert!(ascii.contains("t1"));
        let jsonl = rep.tenants_jsonl();
        assert!(jsonl.starts_with("{\"tenant\":1,"));
        assert!(jsonl.contains("\"latency_p99_s\""));
        assert!(jsonl.trim_end().lines().count() == 1);
    }
}
