//! The open-arrival service driver: pre-sampled tenant schedules feeding
//! `Runtime::submit`, with per-tenant tail-latency accounting.
//!
//! Determinism contract: all randomness (arrival instants, job kinds and
//! sizes) is drawn from tenant-private host-side RNGs *before* the
//! simulation starts; the catalog of shared inputs is generated before the
//! first submission; and every submission instant is an absolute virtual
//! time. Two runs of the same [`ServiceSpec`] therefore replay bit-identical
//! trace hashes, with the recorder on or off.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::rc::Rc;

use rmr_core::{
    CapacityPlan, Cluster, JobConf, JobResult, JobSpec, NodeSpec, Runtime, SchedulePolicy,
};
use rmr_des::prelude::*;
use rmr_hdfs::{Blob, HdfsConfig};
use rmr_net::FabricParams;
use rmr_obs::{ObsEvent, Recorder};
use rmr_workloads::{sort_spec, terasort_spec, textgen, wordcount_spec};

use crate::arrival::{tenant_rng, Arrival, Schedule};
use crate::mix::{JobKind, JobMix, JobSample};
use crate::report::{ServiceReport, TenantReport};

/// HDFS block size for service runs: small enough that the size ladder
/// changes per-job map counts, big enough to keep attempt counts sane at
/// thousands of jobs.
pub const SERVICE_BLOCK: u64 = 32 << 20;

/// Scheduling regime for a service run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicePolicy {
    /// Strict job-arrival order (head-of-line blocking under heavy tails).
    Fifo,
    /// Least-slot-seconds-first fair sharing.
    Fair,
    /// Capacity queues built from each tenant's `share_mille`;
    /// `preempt` enables standing down speculative attempts under pressure.
    Capacity { preempt: bool },
}

/// One tenant's submission stream.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Capacity queue id (also the tenant label in reports).
    pub queue: u32,
    /// Jobs to submit.
    pub jobs: usize,
    pub arrival: Arrival,
    pub mix: JobMix,
    /// Per-mille slot guarantee under [`ServicePolicy::Capacity`].
    pub share_mille: u32,
}

/// A full service-mode experiment.
#[derive(Debug, Clone)]
pub struct ServiceSpec {
    pub nodes: usize,
    pub seed: u64,
    pub policy: ServicePolicy,
    /// Delay-scheduling budget applied to every job (0 = off).
    pub locality_delay: u32,
    pub tenants: Vec<TenantSpec>,
    /// Record the obs event stream (tenant heatmaps, jsonl export).
    pub record_events: bool,
}

impl ServiceSpec {
    fn schedule_policy(&self) -> SchedulePolicy {
        match self.policy {
            ServicePolicy::Fifo => SchedulePolicy::Fifo,
            ServicePolicy::Fair => SchedulePolicy::Fair,
            ServicePolicy::Capacity { preempt } => {
                let shares: Vec<(u32, u32)> = self
                    .tenants
                    .iter()
                    .map(|t| (t.queue, t.share_mille))
                    .collect();
                let plan = CapacityPlan::new(&shares);
                SchedulePolicy::Capacity(if preempt {
                    plan.with_preemption()
                } else {
                    plan
                })
            }
        }
    }
}

/// Catalog path for one (kind, size) rung.
fn rung_path(kind: JobKind, bytes: u64) -> String {
    format!("/svc/in/{}/{bytes}", kind.label())
}

/// Writes one synthetic input of `bytes` under `path` as block-sized part
/// files rotated across workers, so the rung's splits carry diverse
/// locality hints (the delay scheduler needs real choices to make).
async fn gen_synthetic(cluster: &Cluster, path: &str, bytes: u64, salt: usize) {
    let workers = cluster.worker_count();
    let parts = bytes.div_ceil(SERVICE_BLOCK).max(1);
    for p in 0..parts {
        let node = cluster.workers[(salt + p as usize) % workers].id;
        let size = SERVICE_BLOCK.min(bytes - p * SERVICE_BLOCK);
        let mut w = cluster
            .hdfs
            .create(&format!("{path}/part-{p:05}"), node)
            .await
            .expect("service datagen create");
        w.write(Blob::synthetic(size)).await.expect("datagen write");
        w.close().await.expect("datagen close");
    }
}

/// Sizes a job's conf from its sampled input: queue tag, locality-delay
/// budget, and a reduce count proportional to the map count.
fn conf_for(base: &JobConf, queue: u32, locality_delay: u32, bytes: u64) -> JobConf {
    let maps = bytes.div_ceil(SERVICE_BLOCK).max(1) as usize;
    let mut conf = base.clone();
    conf.queue = queue;
    conf.locality_delay = locality_delay;
    conf.num_reduces = (maps / 2).clamp(1, 8);
    conf
}

fn spec_for(job: &JobSample, queue: u32, idx: usize) -> JobSpec {
    let input = rung_path(job.kind, job.input_bytes);
    let output = format!("/svc/out/t{queue}/j{idx}");
    match job.kind {
        JobKind::TeraSort => terasort_spec(&input, &output),
        JobKind::Sort => sort_spec(&input, &output),
        JobKind::WordCount => wordcount_spec(&input, &output),
    }
}

/// WordCount rungs carry real records (its mapper tokenises lines), so the
/// byte ladder maps to a bounded line count.
fn wordcount_lines(bytes: u64) -> usize {
    ((bytes / 64) as usize).clamp(200, 20_000)
}

struct TenantPlan {
    queue: u32,
    schedule: Schedule,
    jobs: Vec<JobSample>,
}

/// Runs one service-mode experiment to completion and aggregates the
/// per-tenant report. Panics if any job hangs (the sim drains with jobs
/// unfinished) or job-keyed runtime state leaks.
pub fn run_service(spec: &ServiceSpec) -> ServiceReport {
    assert!(spec.nodes > 0, "need at least one worker");
    assert!(!spec.tenants.is_empty(), "need at least one tenant");

    // Pre-sample every tenant's plan from its private RNG (host-side).
    let plans: Vec<TenantPlan> = spec
        .tenants
        .iter()
        .map(|t| {
            let mut rng = tenant_rng(spec.seed, t.queue);
            TenantPlan {
                queue: t.queue,
                schedule: t.arrival.sample(t.jobs, &mut rng),
                jobs: (0..t.jobs).map(|_| t.mix.sample(&mut rng)).collect(),
            }
        })
        .collect();
    let total_jobs: usize = plans.iter().map(|p| p.jobs.len()).sum();

    // The shared input catalog: one dataset per distinct (kind, size) rung.
    let catalog: BTreeSet<(JobKind, u64)> = plans
        .iter()
        .flat_map(|p| p.jobs.iter().map(|j| (j.kind, j.input_bytes)))
        .collect();

    let sim = Sim::new(spec.seed);
    let node_specs = vec![NodeSpec::westmere_compute(); spec.nodes];
    let cluster = Cluster::build(
        &sim,
        FabricParams::ib_verbs_qdr(),
        &node_specs,
        HdfsConfig {
            block_size: SERVICE_BLOCK,
            replication: 1,
            packet_size: 4 << 20,
        },
    );
    let obs = if spec.record_events {
        Recorder::on(&sim)
    } else {
        Recorder::off()
    };
    let base = JobConf::osu_ib();
    let policy = spec.schedule_policy();
    let locality_delay = spec.locality_delay;

    let results: Rc<RefCell<Vec<JobResult>>> = Rc::new(RefCell::new(Vec::new()));
    let footprint = Rc::new(Cell::new(usize::MAX));

    let c2 = cluster.clone();
    let sim2 = sim.clone();
    let obs2 = obs.clone();
    let base2 = base.clone();
    let results2 = Rc::clone(&results);
    let footprint2 = Rc::clone(&footprint);
    sim.spawn_named("service-driver", async move {
        // Catalog datagen strictly precedes the first submission so input
        // generation never perturbs arrival timing.
        for (salt, (kind, bytes)) in catalog.iter().enumerate() {
            let path = rung_path(*kind, *bytes);
            match kind {
                JobKind::TeraSort | JobKind::Sort => {
                    gen_synthetic(&c2, &path, *bytes, salt).await;
                }
                JobKind::WordCount => {
                    textgen(&c2, &path, wordcount_lines(*bytes), 8).await;
                }
            }
        }
        let rt = Runtime::with_obs(&c2, base2.clone(), policy, obs2);
        let mut tenants = Vec::new();
        for plan in plans {
            let rt = rt.clone();
            let sim = sim2.clone();
            let base = base2.clone();
            let results = Rc::clone(&results2);
            tenants.push(
                sim2.spawn_named(format!("tenant-{}", plan.queue), async move {
                    match plan.schedule {
                        Schedule::Open(times) => {
                            let mut ids = Vec::with_capacity(plan.jobs.len());
                            for (i, (t, job)) in times.iter().zip(&plan.jobs).enumerate() {
                                let now = sim.now().as_secs_f64();
                                if *t > now {
                                    sim.sleep(SimDuration::from_secs_f64(t - now)).await;
                                }
                                let conf =
                                    conf_for(&base, plan.queue, locality_delay, job.input_bytes);
                                ids.push(rt.submit(conf, spec_for(job, plan.queue, i)));
                            }
                            for id in ids {
                                let res = rt.join(id).await;
                                results.borrow_mut().push(res);
                            }
                        }
                        Schedule::Closed(gaps) => {
                            for (i, (gap, job)) in gaps.iter().zip(&plan.jobs).enumerate() {
                                let conf =
                                    conf_for(&base, plan.queue, locality_delay, job.input_bytes);
                                let id = rt.submit(conf, spec_for(job, plan.queue, i));
                                let res = rt.join(id).await;
                                results.borrow_mut().push(res);
                                sim.sleep(SimDuration::from_secs_f64(*gap)).await;
                            }
                        }
                    }
                }),
            );
        }
        for t in tenants {
            t.await;
        }
        footprint2.set(rt.state_footprint().total());
    })
    .detach();
    sim.run();

    let results = results.borrow();
    assert_eq!(
        results.len(),
        total_jobs,
        "service run drained with jobs unfinished"
    );
    let footprint_total = footprint.get();
    assert_ne!(footprint_total, usize::MAX, "driver never completed");

    // Per-tenant rollup, tenants sorted by queue id.
    let mut queues: Vec<(u32, u32)> = spec
        .tenants
        .iter()
        .map(|t| (t.queue, t.share_mille))
        .collect();
    queues.sort_unstable();
    let total_slot_secs: f64 = results.iter().map(|r| r.slot_secs).sum();
    let tenants: Vec<TenantReport> = queues
        .iter()
        .map(|&(q, share_mille)| {
            let mut rep = TenantReport::new(q, share_mille);
            for r in results.iter().filter(|r| r.queue == q) {
                rep.jobs += 1;
                rep.latency.record(r.duration_s);
                rep.wait.record(r.queue_wait_s);
                rep.exec.record(r.duration_s - r.queue_wait_s);
                rep.slot_secs += r.slot_secs;
            }
            if total_slot_secs > 0.0 {
                rep.slot_share = rep.slot_secs / total_slot_secs;
            }
            rep
        })
        .collect();

    let makespan_s = results.iter().map(|r| r.end_s).fold(0.0, f64::max);
    let slots = (base.map_slots + base.reduce_slots) as f64;
    let utilization = if makespan_s > 0.0 {
        total_slot_secs / (makespan_s * spec.nodes as f64 * slots)
    } else {
        0.0
    };
    let events: Vec<ObsEvent> = obs.events();

    ServiceReport {
        policy: spec.policy,
        nodes: spec.nodes,
        seed: spec.seed,
        jobs: total_jobs,
        tenants,
        makespan_s,
        utilization,
        trace_hash: sim.trace_hash(),
        events_fired: sim.events_fired(),
        polls: sim.polls(),
        footprint_total,
        events,
    }
}
