//! Service-mode determinism and capacity-isolation gates.
//!
//! Debug builds downscale the grid so `cargo test -q` stays fast; release
//! runs (`cargo test --release`, and the CI `service-smoke` probe which
//! embeds the same replay gate) exercise the full 1 000-job / 64-node run
//! from the issue's acceptance criteria.

use rmr_load::{
    run_service, Arrival, BoundedPareto, JobKind, JobMix, ServicePolicy, ServiceSpec, TenantSpec,
};

#[cfg(debug_assertions)]
const SCALE: (usize, usize, usize) = (8, 30, 18); // nodes, t0 jobs, t1 jobs
#[cfg(not(debug_assertions))]
const SCALE: (usize, usize, usize) = (64, 600, 400);

/// Two tenants: an interactive stream of small jobs (Poisson) and a batch
/// stream of heavy-tailed jobs arriving in a diurnal wave. Arrival rates
/// scale with the cluster so per-node offered load — and with it the
/// queueing pressure the capacity gate needs — is the same at both scales.
fn two_tenants(policy: ServicePolicy, record_events: bool) -> ServiceSpec {
    let (nodes, t0_jobs, t1_jobs) = SCALE;
    let load = nodes as f64 / 8.0;
    ServiceSpec {
        nodes,
        seed: 42,
        policy,
        locality_delay: 1,
        record_events,
        tenants: vec![
            TenantSpec {
                queue: 0,
                jobs: t0_jobs,
                arrival: Arrival::Poisson {
                    rate_hz: 0.8 * load,
                },
                mix: JobMix::new(
                    &[(JobKind::TeraSort, 700), (JobKind::WordCount, 300)],
                    BoundedPareto::new(1.5, 32e6, 64e6),
                    2,
                ),
                share_mille: 600,
            },
            TenantSpec {
                queue: 1,
                jobs: t1_jobs,
                arrival: Arrival::Diurnal {
                    base_hz: 0.1 * load,
                    peak_hz: 1.2 * load,
                    period_s: 120.0,
                },
                mix: JobMix::new(
                    &[(JobKind::TeraSort, 500), (JobKind::Sort, 500)],
                    BoundedPareto::new(1.3, 64e6, 512e6),
                    4,
                ),
                share_mille: 400,
            },
        ],
    }
}

#[test]
fn double_run_replays_bit_identically() {
    let spec = two_tenants(ServicePolicy::Capacity { preempt: true }, false);
    let a = run_service(&spec);
    let b = run_service(&spec);
    assert_eq!(a.trace_hash, b.trace_hash, "seeded replay must be exact");
    assert_eq!(a.events_fired, b.events_fired);
    assert_eq!(a.jobs, b.jobs);
    assert_eq!(a.footprint_total, 0, "job-keyed state leaked");

    // Turning the recorder on must not perturb the simulation.
    let c = run_service(&two_tenants(
        ServicePolicy::Capacity { preempt: true },
        true,
    ));
    assert_eq!(a.trace_hash, c.trace_hash, "recorder perturbed the run");
    assert!(!c.events.is_empty());
}

#[test]
fn service_reports_tails_and_fairness() {
    let spec = two_tenants(ServicePolicy::Capacity { preempt: true }, false);
    let rep = run_service(&spec);
    let (_, t0_jobs, t1_jobs) = SCALE;
    assert_eq!(rep.jobs, t0_jobs + t1_jobs);
    assert_eq!(rep.tenants.len(), 2);
    for t in &rep.tenants {
        assert!(t.jobs > 0);
        assert!(t.latency.p99() > 0.0, "tenant {} empty p99", t.queue);
        assert!(t.latency.p50() <= t.latency.p99());
        assert!(t.slot_share > 0.0 && t.slot_share < 1.0);
    }
    assert!(rep.makespan_s > 0.0);
    assert!(rep.utilization > 0.0 && rep.utilization <= 1.0);
    let share_sum: f64 = rep.tenants.iter().map(|t| t.slot_share).sum();
    assert!((share_sum - 1.0).abs() < 1e-9, "shares must sum to 1");
}

#[test]
fn capacity_guarantee_cuts_interactive_queue_tail() {
    // The guaranteed interactive tenant must see no worse a queue-wait tail
    // under capacity scheduling than under FIFO (where heavy batch jobs
    // block it head-of-line).
    let fifo = run_service(&two_tenants(ServicePolicy::Fifo, false));
    let cap = run_service(&two_tenants(
        ServicePolicy::Capacity { preempt: true },
        false,
    ));
    let fifo_t0 = fifo.tenant(0);
    let cap_t0 = cap.tenant(0);
    assert!(
        cap_t0.wait.p99() <= fifo_t0.wait.p99(),
        "capacity wait-p99 {:.2}s must not exceed FIFO {:.2}s",
        cap_t0.wait.p99(),
        fifo_t0.wait.p99()
    );
    assert!(
        cap_t0.latency.p99() < fifo_t0.latency.p99(),
        "capacity p99 {:.2}s must beat FIFO {:.2}s for the guaranteed tenant",
        cap_t0.latency.p99(),
        fifo_t0.latency.p99()
    );
}

#[test]
fn closed_loop_mode_drains() {
    let (nodes, ..) = SCALE;
    let spec = ServiceSpec {
        nodes,
        seed: 9,
        policy: ServicePolicy::Fair,
        locality_delay: 0,
        record_events: false,
        tenants: vec![TenantSpec {
            queue: 0,
            jobs: 10,
            arrival: Arrival::Closed { think_s: 5.0 },
            mix: JobMix::new(
                &[(JobKind::Sort, 1000)],
                BoundedPareto::new(2.0, 32e6, 32e6),
                1,
            ),
            share_mille: 1000,
        }],
    };
    let rep = run_service(&spec);
    assert_eq!(rep.jobs, 10);
    assert_eq!(rep.footprint_total, 0);
    // Closed loop: at most one job in flight, so waits stay near zero.
    assert!(rep.tenant(0).wait.p99() < rep.tenant(0).latency.p99());
}
