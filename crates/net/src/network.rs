//! The cluster network: per-node NICs joined by a non-blocking switch.
//!
//! Every node owns a full-duplex NIC modelled as two [`Fluid`] resources
//! (tx and rx) at the fabric's link rate. The switch is non-blocking (the
//! paper's Mellanox QDR switch and the small Ethernet fabrics are nowhere
//! near saturation for these node counts), so a transfer contends only at
//! the sender's tx port, the receiver's rx port, and — on socket fabrics —
//! both hosts' CPUs.
//!
//! A message transfer completes when all four legs complete, plus one wire
//! latency. This fluid approximation captures the contention that drives
//! the paper's results (many reducers pulling from one TaskTracker, shuffle
//! competing with HDFS replication traffic) without per-packet events.
//!
//! With a hierarchical [`Topology`], cross-rack transfers additionally
//! contend on the source rack's core uplink and the destination rack's
//! downlink — two more fluid legs, sized at
//! `rack_size * link_bw / oversubscription`. A fully-provisioned core
//! (oversubscription 1.0) adds no legs at all and replays bit-identically
//! against the flat network (see [`Topology::constrains`]).

use rmr_des::prelude::*;
use rmr_des::sync::join_all;

use crate::fabric::FabricParams;
use crate::topology::Topology;

/// Identifies a simulated host. Dense indices, assigned by
/// [`Network::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

struct NodeNet {
    tx: Fluid,
    rx: Fluid,
    /// Extra (tx, rx) fluid pairs for rails 1..k on multi-rail fabrics;
    /// empty whenever `fabric.rails <= 1`, so single-rail runs never even
    /// allocate them. Rail 0 is the plain `tx`/`rx` pair above.
    rails: Vec<(Fluid, Fluid)>,
    /// Host CPU; `None` models an infinitely fast host (useful in unit
    /// tests that isolate wire behaviour).
    cpu: Option<Fluid>,
}

/// One rack's core connection (only materialised when the topology
/// constrains, i.e. oversubscription > 1.0).
struct RackNet {
    up: Fluid,
    down: Fluid,
}

/// A scheduled impairment window on one node's links, injected by a fault
/// plan. `factor` is the fraction of nominal bandwidth available during the
/// window; `0.0` is a full partition — transfers and connects touching the
/// node wait out the window instead of moving bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Window start (inclusive).
    pub start: rmr_des::SimTime,
    /// Window end (exclusive).
    pub end: rmr_des::SimTime,
    /// Available bandwidth fraction in `(0, 1]`, or `0.0` for a partition.
    pub factor: f64,
}

/// The shared network of one simulated cluster.
#[derive(Clone)]
pub struct Network {
    sim: Sim,
    fabric: std::rc::Rc<FabricParams>,
    topology: Topology,
    nodes: std::rc::Rc<std::cell::RefCell<Vec<NodeNet>>>,
    /// Per-rack uplink/downlink fluids, indexed by rack; grown lazily as
    /// nodes are added. Empty on flat or fully-provisioned topologies.
    racks: std::rc::Rc<std::cell::RefCell<Vec<RackNet>>>,
    /// Cached `net.bytes_transferred` handle; transfers are the hottest
    /// metric site in a shuffle-bound run.
    c_transferred: rmr_des::Counter,
    /// Cached `net.cross_rack_bytes` handle (0 on flat topologies).
    c_cross_rack: rmr_des::Counter,
    /// Per-node impairment windows keyed by node index. Empty on healthy
    /// runs: the only cost then is one host-side `is_empty` check per
    /// transfer, so fault-free runs replay bit-identically by construction.
    faults: std::rc::Rc<std::cell::RefCell<std::collections::BTreeMap<u32, Vec<FaultWindow>>>>,
}

impl Network {
    /// Creates an empty network over the given fabric with a flat (single
    /// non-blocking switch) topology.
    pub fn new(sim: &Sim, fabric: FabricParams) -> Self {
        Network::with_topology(sim, fabric, Topology::flat())
    }

    /// Creates an empty network over the given fabric and rack topology.
    pub fn with_topology(sim: &Sim, fabric: FabricParams, topology: Topology) -> Self {
        Network {
            sim: sim.clone(),
            fabric: std::rc::Rc::new(fabric),
            topology,
            nodes: std::rc::Rc::new(std::cell::RefCell::new(Vec::new())),
            racks: std::rc::Rc::new(std::cell::RefCell::new(Vec::new())),
            c_transferred: sim.metrics().counter("net.bytes_transferred"),
            c_cross_rack: sim.metrics().counter("net.cross_rack_bytes"),
            faults: std::rc::Rc::new(std::cell::RefCell::new(std::collections::BTreeMap::new())),
        }
    }

    /// Schedules a link-degradation window on `node`: transfers touching the
    /// node that start inside `[start, end)` see only `factor` of nominal
    /// bandwidth on their wire legs (protocol CPU cost is unchanged).
    pub fn inject_degradation(
        &self,
        node: NodeId,
        start: rmr_des::SimTime,
        end: rmr_des::SimTime,
        factor: f64,
    ) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "degradation factor must be in (0, 1], got {factor}"
        );
        self.faults
            .borrow_mut()
            .entry(node.0)
            .or_default()
            .push(FaultWindow { start, end, factor });
    }

    /// Schedules a partition window on `node`: transfers and connection
    /// attempts touching the node inside `[start, end)` stall until the
    /// window closes, then proceed (the fabric heals; nothing is lost).
    pub fn inject_partition(&self, node: NodeId, start: rmr_des::SimTime, end: rmr_des::SimTime) {
        self.faults
            .borrow_mut()
            .entry(node.0)
            .or_default()
            .push(FaultWindow {
                start,
                end,
                factor: 0.0,
            });
    }

    /// End of the latest partition window covering `node` at `now`, if any.
    fn partition_end(&self, node: NodeId, now: rmr_des::SimTime) -> Option<rmr_des::SimTime> {
        let faults = self.faults.borrow();
        faults.get(&node.0).and_then(|ws| {
            ws.iter()
                .filter(|w| w.factor == 0.0 && w.start <= now && now < w.end)
                .map(|w| w.end)
                .max()
        })
    }

    /// Worst active degradation factor for `node` at `now` (1.0 = healthy).
    fn degradation_factor(&self, node: NodeId, now: rmr_des::SimTime) -> f64 {
        let faults = self.faults.borrow();
        faults
            .get(&node.0)
            .map(|ws| {
                ws.iter()
                    .filter(|w| w.factor > 0.0 && w.start <= now && now < w.end)
                    .map(|w| w.factor)
                    .fold(1.0, f64::min)
            })
            .unwrap_or(1.0)
    }

    /// Sleeps until neither endpoint is inside a partition window. Loops:
    /// the instant one window closes, a later one may already be open.
    async fn wait_out_partitions(&self, src: NodeId, dst: NodeId) {
        loop {
            let now = self.sim.now();
            let until = match (self.partition_end(src, now), self.partition_end(dst, now)) {
                (None, None) => return,
                (a, b) => a.max(b).unwrap(),
            };
            self.sim.sleep_until(until).await;
        }
    }

    /// Adds a host. `cpu` is the host's compute resource; socket fabrics
    /// charge protocol work to it, coupling communication and computation.
    pub fn add_node(&self, cpu: Option<Fluid>) -> NodeId {
        let mut nodes = self.nodes.borrow_mut();
        let id = NodeId(nodes.len() as u32);
        let rails = (1..self.fabric.rails)
            .map(|r| {
                (
                    Fluid::new(&self.sim, self.fabric.link_bw)
                        .with_metrics_key(format!("net.{id}.rail{r}.tx")),
                    Fluid::new(&self.sim, self.fabric.link_bw)
                        .with_metrics_key(format!("net.{id}.rail{r}.rx")),
                )
            })
            .collect();
        nodes.push(NodeNet {
            tx: Fluid::new(&self.sim, self.fabric.link_bw).with_metrics_key(format!("net.{id}.tx")),
            rx: Fluid::new(&self.sim, self.fabric.link_bw).with_metrics_key(format!("net.{id}.rx")),
            rails,
            cpu,
        });
        if self.topology.constrains() {
            let rack = self.topology.rack_of(id);
            let mut racks = self.racks.borrow_mut();
            while racks.len() <= rack {
                let bw = self.topology.core_bw(self.fabric.link_bw);
                let r = racks.len();
                racks.push(RackNet {
                    up: Fluid::new(&self.sim, bw).with_metrics_key(format!("net.rack{r}.up")),
                    down: Fluid::new(&self.sim, bw).with_metrics_key(format!("net.rack{r}.down")),
                });
            }
        }
        id
    }

    /// The fabric this network runs on.
    pub fn fabric(&self) -> &FabricParams {
        &self.fabric
    }

    /// The rack topology this network runs on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Bytes that crossed rack boundaries so far (0 on flat topologies).
    pub fn cross_rack_bytes(&self) -> f64 {
        self.c_cross_rack.get()
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when no hosts were added yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn leg_futures(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        wire_scale: f64,
    ) -> Vec<rmr_des::resource::fluid::ConsumeFuture> {
        let nodes = self.nodes.borrow();
        let s = &nodes[src.0 as usize];
        let d = &nodes[dst.0 as usize];
        // Degraded links stretch the wire legs only; `wire_scale` is exactly
        // 1.0 on healthy paths, leaving the consumed amount bit-identical.
        let wire = bytes as f64 * wire_scale;
        let mut legs = Vec::with_capacity(4);
        if src != dst {
            legs.push(s.tx.consume(wire));
            legs.push(d.rx.consume(wire));
            // Cross-rack messages also queue on the source rack's core
            // uplink and the destination rack's downlink — but only when
            // the core can actually bind (oversubscription > 1.0); a
            // fully-provisioned core is mathematically never the
            // bottleneck, and omitting its legs keeps flat replay exact.
            if self.topology.constrains() && self.topology.cross_rack(src, dst) {
                let racks = self.racks.borrow();
                legs.push(racks[self.topology.rack_of(src)].up.consume(wire));
                legs.push(racks[self.topology.rack_of(dst)].down.consume(wire));
            }
        }
        let send_cpu = self.fabric.send_cpu(bytes);
        let recv_cpu = self.fabric.recv_cpu(bytes);
        if let Some(cpu) = &s.cpu {
            if send_cpu > 0.0 {
                legs.push(cpu.consume(send_cpu));
            }
        }
        if src != dst {
            if let Some(cpu) = &d.cpu {
                if recv_cpu > 0.0 {
                    legs.push(cpu.consume(recv_cpu));
                }
            }
        }
        legs
    }

    fn striped_leg_futures(
        &self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        wire_scale: f64,
    ) -> Vec<rmr_des::resource::fluid::ConsumeFuture> {
        let nodes = self.nodes.borrow();
        let s = &nodes[src.0 as usize];
        let d = &nodes[dst.0 as usize];
        let k = (s.rails.len() + 1) as f64;
        let wire = bytes as f64 * wire_scale;
        // Even fluid split: each rail moves 1/k of the wire bytes. Rail 0
        // is the node's plain tx/rx pair, so a striped message still shares
        // it fairly with un-striped traffic.
        let share = wire / k;
        let mut legs = Vec::with_capacity(2 * (s.rails.len() + 1) + 4);
        legs.push(s.tx.consume(share));
        legs.push(d.rx.consume(share));
        for (stx, _) in &s.rails {
            legs.push(stx.consume(share));
        }
        for (_, drx) in &d.rails {
            legs.push(drx.consume(share));
        }
        // The rack core carries the aggregate regardless of how many HCA
        // rails fed it, so its legs see the full message.
        if self.topology.constrains() && self.topology.cross_rack(src, dst) {
            let racks = self.racks.borrow();
            legs.push(racks[self.topology.rack_of(src)].up.consume(wire));
            legs.push(racks[self.topology.rack_of(dst)].down.consume(wire));
        }
        // Protocol CPU is charged once for the whole message: striping
        // splits the wire, not the work-request posting.
        let send_cpu = self.fabric.send_cpu(bytes);
        if let Some(cpu) = &s.cpu {
            if send_cpu > 0.0 {
                legs.push(cpu.consume(send_cpu));
            }
        }
        let recv_cpu = self.fabric.recv_cpu(bytes);
        if let Some(cpu) = &d.cpu {
            if recv_cpu > 0.0 {
                legs.push(cpu.consume(recv_cpu));
            }
        }
        legs
    }

    /// Like [`Network::transfer`], but stripes the wire bytes evenly across
    /// the fabric's rails. On single-rail fabrics and loopback this *is*
    /// `transfer` — same legs, same ordering — so engines can call it
    /// unconditionally without perturbing single-rail replays.
    pub async fn transfer_striped(&self, src: NodeId, dst: NodeId, bytes: u64) {
        if self.fabric.rails <= 1 || src == dst {
            return self.transfer(src, dst, bytes).await;
        }
        let mut wire_scale = 1.0;
        if !self.faults.borrow().is_empty() {
            self.wait_out_partitions(src, dst).await;
            let now = self.sim.now();
            wire_scale =
                1.0 / (self.degradation_factor(src, now) * self.degradation_factor(dst, now));
        }
        let legs = self.striped_leg_futures(src, dst, bytes, wire_scale);
        join_all(legs).await;
        self.sim.sleep(self.fabric.latency).await;
        self.c_transferred.add(bytes as f64);
        if self.topology.cross_rack(src, dst) {
            self.c_cross_rack.add(bytes as f64);
        }
    }

    /// Moves one `bytes`-sized message from `src` to `dst`, resolving when
    /// the last byte lands. Loopback (src == dst) skips the wire but still
    /// pays the protocol CPU cost on socket fabrics (local HTTP fetches in
    /// vanilla Hadoop are real socket traffic through loopback).
    pub async fn transfer(&self, src: NodeId, dst: NodeId, bytes: u64) {
        let mut wire_scale = 1.0;
        if !self.faults.borrow().is_empty() {
            if src != dst {
                self.wait_out_partitions(src, dst).await;
            }
            let now = self.sim.now();
            wire_scale =
                1.0 / (self.degradation_factor(src, now) * self.degradation_factor(dst, now));
        }
        let legs = self.leg_futures(src, dst, bytes, wire_scale);
        join_all(legs).await;
        if src != dst {
            self.sim.sleep(self.fabric.latency).await;
        }
        self.c_transferred.add(bytes as f64);
        if self.topology.cross_rack(src, dst) {
            self.c_cross_rack.add(bytes as f64);
        }
    }

    /// Connection-establishment delay between two hosts (handshake RTT plus
    /// fabric-specific setup).
    pub async fn connect_delay(&self, src: NodeId, dst: NodeId) {
        if src != dst {
            if !self.faults.borrow().is_empty() {
                self.wait_out_partitions(src, dst).await;
            }
            let rtt = self.fabric.latency * 2;
            self.sim.sleep(rtt).await;
        }
        self.sim.sleep(self.fabric.connect_cost).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_des::SimTime;
    use std::cell::Cell;
    use std::rc::Rc;

    fn secs(s: f64) -> SimTime {
        SimTime::from_nanos((s * 1e9) as u64)
    }

    #[test]
    fn lone_transfer_runs_at_link_rate() {
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = 100.0; // 100 B/s for easy arithmetic
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let a = net.add_node(None);
        let b = net.add_node(None);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        let sim2 = sim.clone();
        let net2 = net.clone();
        sim.spawn(async move {
            net2.transfer(a, b, 200).await;
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), secs(2.0));
    }

    #[test]
    fn incast_shares_receiver_port() {
        // Two senders into one receiver: rx port is the bottleneck, so each
        // 100 B message takes 2 s instead of 1 s.
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = 100.0;
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let s1 = net.add_node(None);
        let s2 = net.add_node(None);
        let r = net.add_node(None);
        let t = Rc::new(std::cell::RefCell::new(Vec::new()));
        for s in [s1, s2] {
            let net = net.clone();
            let sim2 = sim.clone();
            let t2 = Rc::clone(&t);
            sim.spawn(async move {
                net.transfer(s, r, 100).await;
                t2.borrow_mut().push(sim2.now());
            })
            .detach();
        }
        sim.run();
        for done in t.borrow().iter() {
            assert_eq!(*done, secs(2.0));
        }
    }

    #[test]
    fn socket_fabric_charges_host_cpu() {
        let sim = Sim::new(1);
        let mut f = FabricParams::ipoib_qdr();
        f.link_bw = 1e12; // wire "free" so CPU dominates
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_send_per_byte = 1e-3; // 1 ms per byte: absurd but measurable
        f.cpu_recv_per_byte = 0.0;
        f.cpu_per_packet = 0.0;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let cpu_a = Fluid::with_entry_cap(&sim, 1.0, 1.0);
        let a = net.add_node(Some(cpu_a.clone()));
        let b = net.add_node(None);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        let sim2 = sim.clone();
        let net2 = net.clone();
        sim.spawn(async move {
            net2.transfer(a, b, 1000).await; // 1000 B * 1 ms/B = 1 s of CPU
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), secs(1.0));
        assert!((cpu_a.served() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rdma_fabric_leaves_cpu_idle() {
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = 1000.0;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let cpu_a = Fluid::with_entry_cap(&sim, 1.0, 1.0);
        let a = net.add_node(Some(cpu_a.clone()));
        let b = net.add_node(None);
        let net2 = net.clone();
        sim.spawn(async move {
            net2.transfer(a, b, 5000).await;
        })
        .detach();
        sim.run();
        assert_eq!(cpu_a.served(), 0.0);
    }

    #[test]
    fn loopback_skips_wire_but_pays_cpu() {
        let sim = Sim::new(1);
        let mut f = FabricParams::gige_1();
        f.cpu_send_per_byte = 1e-6;
        f.cpu_recv_per_byte = 1e-6;
        f.cpu_per_packet = 0.0;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let cpu = Fluid::with_entry_cap(&sim, 4.0, 1.0);
        let a = net.add_node(Some(cpu.clone()));
        let net2 = net.clone();
        let sim2 = sim.clone();
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            net2.transfer(a, a, 1_000_000).await; // only send-side CPU: 1 s
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), secs(1.0));
    }

    #[test]
    fn latency_adds_once_per_message() {
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = 1e15;
        f.latency = rmr_des::SimDuration::from_micros(7);
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let a = net.add_node(None);
        let b = net.add_node(None);
        let net2 = net.clone();
        let sim2 = sim.clone();
        let done = Rc::new(Cell::new(0u64));
        let d = Rc::clone(&done);
        sim.spawn(async move {
            for _ in 0..3 {
                net2.transfer(a, b, 10).await;
            }
            d.set(sim2.now().as_nanos());
        })
        .detach();
        sim.run();
        // Each fluid leg rounds up to a whole nanosecond, so allow that.
        let got = done.get();
        assert!((3 * 7_000..3 * 7_000 + 10).contains(&got), "got {got}");
    }

    /// Runs one cross-rack transfer per sender on a 2-per-rack topology and
    /// returns (finish time, cross_rack_bytes).
    fn run_cross_rack(oversub: f64) -> (SimTime, f64) {
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = 100.0;
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        let net = Network::with_topology(&sim, f, Topology::racks(2, oversub));
        // Rack 0: two senders. Rack 1: two receivers (distinct rx ports, so
        // only the rack legs can couple the flows).
        let s1 = net.add_node(None);
        let s2 = net.add_node(None);
        let r1 = net.add_node(None);
        let r2 = net.add_node(None);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        for (s, r) in [(s1, r1), (s2, r2)] {
            let net = net.clone();
            let sim2 = sim.clone();
            let d = Rc::clone(&done);
            sim.spawn(async move {
                net.transfer(s, r, 100).await;
                d.set(sim2.now());
            })
            .detach();
        }
        sim.run();
        (done.get(), net.cross_rack_bytes())
    }

    #[test]
    fn oversubscribed_core_throttles_cross_rack_aggregate() {
        // Core uplink = 2 * 100 / 4 = 50 B/s shared by two 100 B flows:
        // aggregate cross-rack throughput is pinned at core capacity, so
        // both finish at t = 200/50 = 4 s instead of 1 s.
        let (t, bytes) = run_cross_rack(4.0);
        assert_eq!(t, secs(4.0));
        assert_eq!(bytes, 200.0);
    }

    #[test]
    fn degradation_window_stretches_wire_legs() {
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = 100.0;
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let a = net.add_node(None);
        let b = net.add_node(None);
        // Half bandwidth on the receiver for the first 10 s: the 100 B
        // message takes 2 s instead of 1 s.
        net.inject_degradation(b, SimTime::ZERO, secs(10.0), 0.5);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        let sim2 = sim.clone();
        let net2 = net.clone();
        sim.spawn(async move {
            net2.transfer(a, b, 100).await;
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), secs(2.0));
    }

    #[test]
    fn partition_window_stalls_transfers_until_heal() {
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = 100.0;
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let a = net.add_node(None);
        let b = net.add_node(None);
        net.inject_partition(b, SimTime::ZERO, secs(3.0));
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        let sim2 = sim.clone();
        let net2 = net.clone();
        sim.spawn(async move {
            net2.transfer(a, b, 100).await; // waits to 3 s, then 1 s wire
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), secs(4.0));
    }

    #[test]
    fn expired_windows_cost_nothing() {
        // A window entirely in the past must not perturb a later transfer.
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = 100.0;
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let a = net.add_node(None);
        let b = net.add_node(None);
        net.inject_degradation(a, SimTime::ZERO, secs(1.0), 0.1);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        let sim2 = sim.clone();
        let net2 = net.clone();
        sim.spawn(async move {
            sim2.sleep(rmr_des::SimDuration::from_secs(5)).await;
            net2.transfer(a, b, 100).await;
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), secs(6.0));
    }

    #[test]
    fn striping_splits_the_wire_across_rails() {
        // 200 B at 100 B/s per rail: one rail takes 2 s, two rails 1 s.
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr().with_rails(2);
        f.link_bw = 100.0;
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let a = net.add_node(None);
        let b = net.add_node(None);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        let sim2 = sim.clone();
        let net2 = net.clone();
        sim.spawn(async move {
            net2.transfer_striped(a, b, 200).await;
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), secs(1.0));
    }

    #[test]
    fn striped_on_one_rail_is_plain_transfer() {
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = 100.0;
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let a = net.add_node(None);
        let b = net.add_node(None);
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        let sim2 = sim.clone();
        let net2 = net.clone();
        sim.spawn(async move {
            net2.transfer_striped(a, b, 200).await;
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), secs(2.0));
    }

    #[test]
    fn striped_transfers_share_rail_zero_with_plain_traffic() {
        // A plain 100 B transfer and a striped 200 B transfer from the same
        // sender: rail 0 carries 100 + 100 (striped half), rail 1 carries
        // the other 100. Rail 0 is the bottleneck at 200 B / 100 B/s = 2 s.
        let sim = Sim::new(1);
        let mut f = FabricParams::ib_verbs_qdr().with_rails(2);
        f.link_bw = 100.0;
        f.latency = rmr_des::SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        let net = Network::new(&sim, f);
        let a = net.add_node(None);
        let b = net.add_node(None);
        let t = Rc::new(std::cell::RefCell::new(Vec::new()));
        for striped in [false, true] {
            let net = net.clone();
            let sim2 = sim.clone();
            let t2 = Rc::clone(&t);
            sim.spawn(async move {
                if striped {
                    net.transfer_striped(a, b, 200).await;
                } else {
                    net.transfer(a, b, 100).await;
                }
                t2.borrow_mut().push(sim2.now());
            })
            .detach();
        }
        sim.run();
        assert_eq!(*t.borrow().iter().max().unwrap(), secs(2.0));
    }

    #[test]
    fn fully_provisioned_racks_match_flat_timing() {
        // At oversub 1.0 no rack legs exist: each flow runs at the link
        // rate exactly as on the flat switch, but cross-rack accounting
        // still sees the traffic.
        let (t, bytes) = run_cross_rack(1.0);
        assert_eq!(t, secs(1.0));
        assert_eq!(bytes, 200.0);
    }
}
