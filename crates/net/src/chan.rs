//! Connection-oriented message channels over the simulated network.
//!
//! This is the "Java sockets" layer of the reproduction: vanilla Hadoop's
//! HTTP servlet/copier traffic and HDFS data pipelines run over these
//! channels. A [`Conn`] is one end of an established duplex connection;
//! `send` charges the full socket timing model (CPU on both hosts, NIC
//! ports, wire latency) before the message appears at the peer's `recv`.
//!
//! Servers create a [`Listener`]; clients reach it through its cloneable
//! [`ListenerHandle`] — the moral equivalent of an `IP:port`.

use rmr_des::sync::{channel, Receiver, Sender};

use crate::network::{Network, NodeId};

/// Anything that can be sent over a simulated connection: it just needs to
/// know its wire size (headers included).
pub trait Wire: 'static {
    /// Total bytes this message occupies on the wire.
    fn wire_size(&self) -> u64;
}

/// Blanket impl for sized byte counts used in tests/benches.
impl Wire for u64 {
    fn wire_size(&self) -> u64 {
        *self
    }
}

/// One end of an established duplex connection carrying messages of type `M`.
pub struct Conn<M: Wire> {
    net: Network,
    local: NodeId,
    peer: NodeId,
    out: Sender<M>,
    inbox: Receiver<M>,
}

impl<M: Wire> Conn<M> {
    /// The node this end lives on.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// The node the other end lives on.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Transmits `m`, resolving when the last byte has landed at the peer.
    /// Returns `Err(m)` if the peer end was dropped.
    pub async fn send(&self, m: M) -> Result<(), M> {
        self.net
            .transfer(self.local, self.peer, m.wire_size())
            .await;
        self.out.send_now(m).map_err(|e| e.0)
    }

    /// Receives the next message; `None` once the peer end is dropped and
    /// the buffer drained.
    pub async fn recv(&self) -> Option<M> {
        self.inbox.recv().await
    }

    /// Messages already delivered and waiting locally.
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }
}

/// Creates an already-established connection pair between two nodes
/// (no handshake cost; use [`ListenerHandle::connect`] for the full path).
pub fn pair<M: Wire>(net: &Network, a: NodeId, b: NodeId) -> (Conn<M>, Conn<M>) {
    let (tx_ab, rx_ab) = channel::<M>();
    let (tx_ba, rx_ba) = channel::<M>();
    (
        Conn {
            net: net.clone(),
            local: a,
            peer: b,
            out: tx_ab,
            inbox: rx_ba,
        },
        Conn {
            net: net.clone(),
            local: b,
            peer: a,
            out: tx_ba,
            inbox: rx_ab,
        },
    )
}

/// A passive listening socket on one node.
pub struct Listener<M: Wire> {
    net: Network,
    node: NodeId,
    incoming: Receiver<Conn<M>>,
    handle_tx: Sender<Conn<M>>,
}

/// Cloneable address of a [`Listener`]; clients `connect` through it.
pub struct ListenerHandle<M: Wire> {
    net: Network,
    node: NodeId,
    tx: Sender<Conn<M>>,
}

/// Opens a listener on `node`.
pub fn listen<M: Wire>(net: &Network, node: NodeId) -> Listener<M> {
    let (tx, rx) = channel::<Conn<M>>();
    Listener {
        net: net.clone(),
        node,
        incoming: rx,
        handle_tx: tx,
    }
}

impl<M: Wire> Listener<M> {
    /// The address clients dial.
    pub fn handle(&self) -> ListenerHandle<M> {
        ListenerHandle {
            net: self.net.clone(),
            node: self.node,
            tx: self.handle_tx.clone(),
        }
    }

    /// Waits for the next inbound connection. `None` if every handle was
    /// dropped.
    pub async fn accept(&self) -> Option<Conn<M>> {
        self.incoming.recv().await
    }

    /// The node this listener runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

// Manual impl: `M` itself need not be `Clone` for the handle to be.
impl<M: Wire> Clone for ListenerHandle<M> {
    fn clone(&self) -> Self {
        ListenerHandle {
            net: self.net.clone(),
            node: self.node,
            tx: self.tx.clone(),
        }
    }
}

impl<M: Wire> ListenerHandle<M> {
    /// Establishes a connection from `from`, paying the fabric's handshake
    /// cost. Returns the client end.
    pub async fn connect(&self, from: NodeId) -> Conn<M> {
        self.try_connect(from)
            .await
            .expect("listener dropped while connecting")
    }

    /// [`ListenerHandle::connect`], but observing server death instead of
    /// panicking: returns `None` when the listener is gone (the node was
    /// killed). The handshake cost is paid either way — a client discovers
    /// the refusal only after the round trip, like a real RST.
    pub async fn try_connect(&self, from: NodeId) -> Option<Conn<M>> {
        self.net.connect_delay(from, self.node).await;
        let (client, server) = pair::<M>(&self.net, from, self.node);
        if self.tx.send_now(server).is_err() {
            return None;
        }
        Some(client)
    }

    /// The node the listener runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricParams;
    use rmr_des::SimTime;
    use rmr_des::{Sim, SimDuration};
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    fn quiet_fabric(bw: f64) -> FabricParams {
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = bw;
        f.latency = SimDuration::ZERO;
        f.connect_cost = SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        f
    }

    #[test]
    fn request_response_round_trip() {
        let sim = Sim::new(1);
        let net = Network::new(&sim, quiet_fabric(100.0));
        let server_node = net.add_node(None);
        let client_node = net.add_node(None);
        let listener = listen::<u64>(&net, server_node);
        let handle = listener.handle();

        // Server: echo double the request size back.
        sim.spawn(async move {
            while let Some(conn) = listener.accept().await {
                while let Some(req) = conn.recv().await {
                    let _ = conn.send(req * 2).await;
                }
            }
        })
        .detach();

        let got = Rc::new(Cell::new(0u64));
        let got2 = Rc::clone(&got);
        let done_at = Rc::new(Cell::new(SimTime::ZERO));
        let done2 = Rc::clone(&done_at);
        let sim2 = sim.clone();
        sim.spawn(async move {
            let conn = handle.connect(client_node).await;
            conn.send(100u64).await.unwrap(); // 1 s at 100 B/s
            let resp = conn.recv().await.unwrap(); // 200 B → 2 s
            got2.set(resp);
            done2.set(sim2.now());
        })
        .detach();
        sim.run();
        assert_eq!(got.get(), 200);
        assert_eq!(done_at.get().as_nanos(), 3_000_000_000);
    }

    #[test]
    fn messages_arrive_in_send_order() {
        let sim = Sim::new(1);
        let net = Network::new(&sim, quiet_fabric(1e9));
        let a = net.add_node(None);
        let b = net.add_node(None);
        let (ca, cb) = pair::<u64>(&net, a, b);
        let seen = Rc::new(RefCell::new(Vec::new()));
        let seen2 = Rc::clone(&seen);
        sim.spawn(async move {
            while let Some(m) = cb.recv().await {
                seen2.borrow_mut().push(m);
            }
        })
        .detach();
        sim.spawn(async move {
            for i in 1..=4u64 {
                ca.send(i * 10).await.unwrap();
            }
            drop(ca);
        })
        .detach();
        sim.run();
        assert_eq!(*seen.borrow(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn send_after_peer_drop_errors() {
        let sim = Sim::new(1);
        let net = Network::new(&sim, quiet_fabric(1e9));
        let a = net.add_node(None);
        let b = net.add_node(None);
        let (ca, cb) = pair::<u64>(&net, a, b);
        drop(cb);
        let failed = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&failed);
        sim.spawn(async move {
            f2.set(ca.send(5).await.is_err());
        })
        .detach();
        sim.run();
        assert!(failed.get());
    }

    #[test]
    fn connect_pays_handshake() {
        let sim = Sim::new(1);
        let mut f = quiet_fabric(1e9);
        f.latency = SimDuration::from_micros(10);
        f.connect_cost = SimDuration::from_micros(30);
        let net = Network::new(&sim, f);
        let s = net.add_node(None);
        let c = net.add_node(None);
        let listener = listen::<u64>(&net, s);
        let handle = listener.handle();
        let t = Rc::new(Cell::new(0u64));
        let t2 = Rc::clone(&t);
        let sim2 = sim.clone();
        sim.spawn(async move {
            let _conn = handle.connect(c).await;
            t2.set(sim2.now().as_nanos());
        })
        .detach();
        sim.run();
        assert_eq!(t.get(), 2 * 10_000 + 30_000); // RTT + setup
    }
}
