//! Interconnect models.
//!
//! A [`FabricParams`] captures what distinguishes the four interconnects the
//! paper evaluates (§II-B, §IV-A): raw link bandwidth, one-way latency,
//! segmentation size, and — crucially — how much *host CPU* the protocol
//! stack burns per byte and per packet. The socket paths (1GigE, 10GigE,
//! IPoIB) copy data through the kernel and pay per-packet interrupt/stack
//! costs; the verbs path is OS-bypassed and zero-copy, so its host CPU cost
//! is near zero and the HCA does the work. This difference, not raw bandwidth,
//! is why IPoIB (same 32 Gbps QDR link as verbs) loses to the RDMA designs.

use rmr_des::SimDuration;

/// Which software path a fabric uses; affects how transfers charge CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// Kernel sockets over Ethernet or IPoIB: per-byte copies + per-packet
    /// stack costs on both hosts.
    Socket,
    /// Native IB verbs: OS bypass, zero copy; the host only posts work
    /// requests.
    Verbs,
}

/// Timing/cost parameters of one interconnect.
#[derive(Debug, Clone)]
pub struct FabricParams {
    /// Human-readable name used in reports ("IPoIB (32Gbps)" etc.).
    pub name: &'static str,
    /// Software path.
    pub kind: FabricKind,
    /// Per-direction link bandwidth in bytes/second (what one NIC port can
    /// move after protocol efficiency).
    pub link_bw: f64,
    /// One-way wire + switch latency for a message.
    pub latency: SimDuration,
    /// Segmentation unit (Ethernet MTU / IPoIB datagram / IB MTU); drives
    /// per-packet CPU charges.
    pub mtu: u64,
    /// Host CPU seconds consumed per byte on the send side (copies,
    /// checksums). Zero for verbs.
    pub cpu_send_per_byte: f64,
    /// Host CPU seconds consumed per byte on the receive side.
    pub cpu_recv_per_byte: f64,
    /// Host CPU seconds per packet (interrupts, protocol headers) on each
    /// side.
    pub cpu_per_packet: f64,
    /// Fixed host CPU seconds per message/work-request posting on each side.
    pub cpu_per_message: f64,
    /// Extra one-time cost of establishing a connection (TCP handshake /
    /// QP transition to RTS).
    pub connect_cost: SimDuration,
    /// Independent wire rails per node (multi-rail HCAs / dual-port
    /// bonding). `1` everywhere by default: per-rail fluid legs are only
    /// created above 1, so single-rail replays are untouched. Transfers use
    /// the rails only when asked to stripe (see `Network::transfer_striped`).
    pub rails: usize,
}

impl FabricParams {
    /// 1 Gigabit Ethernet: the stock data-center baseline (Fig 4(b), 5, 6).
    ///
    /// ~117 MB/s effective goodput, 50 µs one-way latency, and the full
    /// kernel socket path cost.
    pub fn gige_1() -> Self {
        FabricParams {
            name: "1GigE",
            kind: FabricKind::Socket,
            link_bw: 117.0e6,
            latency: SimDuration::from_micros(55),
            mtu: 1500,
            cpu_send_per_byte: 2.5e-9,
            cpu_recv_per_byte: 3.2e-9,
            cpu_per_packet: 1.6e-6,
            cpu_per_message: 4.0e-6,
            connect_cost: SimDuration::from_micros(250),
            rails: 1,
        }
    }

    /// 10 Gigabit Ethernet with TCP Offload Engine (the Chelsio T320 cards in
    /// the paper's testbed): high bandwidth, offload trims but does not
    /// remove the socket path cost.
    pub fn gige_10_toe() -> Self {
        FabricParams {
            name: "10GigE",
            kind: FabricKind::Socket,
            link_bw: 1.1e9,
            latency: SimDuration::from_micros(25),
            mtu: 9000,
            cpu_send_per_byte: 1.5e-9,
            cpu_recv_per_byte: 1.9e-9,
            cpu_per_packet: 1.0e-6,
            cpu_per_message: 3.5e-6,
            connect_cost: SimDuration::from_micros(200),
            rails: 1,
        }
    }

    /// IP-over-InfiniBand on the QDR (32 Gbps) fabric: the IB link presented
    /// as an IP NIC. Bandwidth well below the wire rate (kernel IP path) and
    /// full socket CPU costs — the paper's main socket comparison point.
    pub fn ipoib_qdr() -> Self {
        FabricParams {
            name: "IPoIB (32Gbps)",
            kind: FabricKind::Socket,
            link_bw: 1.25e9,
            latency: SimDuration::from_micros(18),
            mtu: 2044,
            cpu_send_per_byte: 1.2e-9,
            cpu_recv_per_byte: 1.5e-9,
            cpu_per_packet: 0.9e-6,
            cpu_per_message: 3.5e-6,
            connect_cost: SimDuration::from_micros(150),
            rails: 1,
        }
    }

    /// Native InfiniBand verbs on QDR (32 Gbps): OS-bypass RDMA. ~3.2 GB/s
    /// payload bandwidth, single-digit-µs latency, host CPU only posts WRs.
    pub fn ib_verbs_qdr() -> Self {
        FabricParams {
            name: "IB-verbs (32Gbps)",
            kind: FabricKind::Verbs,
            link_bw: 3.2e9,
            latency: SimDuration::from_micros(2),
            mtu: 2048,
            cpu_send_per_byte: 0.0,
            cpu_recv_per_byte: 0.0,
            cpu_per_packet: 0.0,
            cpu_per_message: 1.0e-6,
            connect_cost: SimDuration::from_micros(500),
            rails: 1,
        }
    }

    /// iWARP: RDMA over TCP/IP on 10 Gigabit Ethernet (§II-B-2). OS-bypassed
    /// like verbs but at Ethernet bandwidth and with the TCP transport's
    /// higher latency. Not benchmarked in the paper's figures, but part of
    /// the background's design space and useful for what-if studies.
    pub fn iwarp_10g() -> Self {
        FabricParams {
            name: "iWARP (10GigE)",
            kind: FabricKind::Verbs,
            link_bw: 1.1e9,
            latency: SimDuration::from_micros(8),
            mtu: 9000,
            cpu_send_per_byte: 0.0,
            cpu_recv_per_byte: 0.0,
            cpu_per_packet: 0.0,
            cpu_per_message: 1.5e-6,
            connect_cost: SimDuration::from_micros(400),
            rails: 1,
        }
    }

    /// RoCE: RDMA over Converged Ethernet — verbs semantics on an Ethernet
    /// fabric (the OpenFabrics stack exposes it identically, §II-B).
    pub fn roce_10g() -> Self {
        FabricParams {
            name: "RoCE (10GigE)",
            kind: FabricKind::Verbs,
            link_bw: 1.15e9,
            latency: SimDuration::from_micros(4),
            mtu: 4096,
            cpu_send_per_byte: 0.0,
            cpu_recv_per_byte: 0.0,
            cpu_per_packet: 0.0,
            cpu_per_message: 1.2e-6,
            connect_cost: SimDuration::from_micros(450),
            rails: 1,
        }
    }

    /// Returns the fabric with `k` independent wire rails per node
    /// (clamped to at least one). Only striped transfers spread load
    /// across them; plain transfers keep using rail 0.
    pub fn with_rails(mut self, k: usize) -> Self {
        self.rails = k.max(1);
        self
    }

    /// True when the fabric bypasses the kernel (RDMA capable).
    pub fn is_rdma(&self) -> bool {
        self.kind == FabricKind::Verbs
    }

    /// Number of wire packets a `bytes`-sized message segments into.
    pub fn packets(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            1
        } else {
            bytes.div_ceil(self.mtu)
        }
    }

    /// Host CPU seconds the *sender* burns for a `bytes`-sized message.
    pub fn send_cpu(&self, bytes: u64) -> f64 {
        self.cpu_per_message
            + self.cpu_send_per_byte * bytes as f64
            + self.cpu_per_packet * self.packets(bytes) as f64
    }

    /// Host CPU seconds the *receiver* burns for a `bytes`-sized message.
    pub fn recv_cpu(&self, bytes: u64) -> f64 {
        self.cpu_per_message
            + self.cpu_recv_per_byte * bytes as f64
            + self.cpu_per_packet * self.packets(bytes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let g1 = FabricParams::gige_1();
        let g10 = FabricParams::gige_10_toe();
        let ipoib = FabricParams::ipoib_qdr();
        let verbs = FabricParams::ib_verbs_qdr();
        assert!(g1.link_bw < g10.link_bw);
        assert!(g10.link_bw <= ipoib.link_bw);
        assert!(ipoib.link_bw < verbs.link_bw);
        assert!(verbs.latency < ipoib.latency);
        assert!(verbs.is_rdma());
        assert!(!ipoib.is_rdma());
    }

    #[test]
    fn verbs_burns_no_per_byte_cpu() {
        let verbs = FabricParams::ib_verbs_qdr();
        let one_mb = verbs.send_cpu(1 << 20);
        // Only the per-message posting cost, independent of size.
        assert!((one_mb - verbs.cpu_per_message).abs() < 1e-12);
    }

    #[test]
    fn socket_cpu_scales_with_bytes_and_packets() {
        let ipoib = FabricParams::ipoib_qdr();
        let small = ipoib.send_cpu(1_000);
        let big = ipoib.send_cpu(1_000_000);
        assert!(big > 100.0 * small);
    }

    #[test]
    fn rdma_ethernet_variants_sit_between_sockets_and_ib() {
        let iwarp = FabricParams::iwarp_10g();
        let roce = FabricParams::roce_10g();
        let verbs = FabricParams::ib_verbs_qdr();
        let g10 = FabricParams::gige_10_toe();
        for f in [&iwarp, &roce] {
            assert!(f.is_rdma());
            assert_eq!(f.send_cpu(1 << 20), f.cpu_per_message, "zero-copy");
            assert!(f.link_bw <= verbs.link_bw);
            assert!(f.latency < g10.latency);
        }
    }

    #[test]
    fn presets_are_single_rail_and_with_rails_clamps() {
        let verbs = FabricParams::ib_verbs_qdr();
        assert_eq!(verbs.rails, 1);
        assert_eq!(verbs.clone().with_rails(2).rails, 2);
        assert_eq!(verbs.with_rails(0).rails, 1);
    }

    #[test]
    fn packet_count_rounds_up() {
        let g1 = FabricParams::gige_1();
        assert_eq!(g1.packets(0), 1);
        assert_eq!(g1.packets(1), 1);
        assert_eq!(g1.packets(1500), 1);
        assert_eq!(g1.packets(1501), 2);
    }
}
