//! Hierarchical (rack / top-of-rack / core) topology description.
//!
//! Real clusters past one rack are not a single non-blocking switch: nodes
//! connect to a top-of-rack (ToR) switch at the link rate, and ToR uplinks
//! into the core carry the rack's aggregate cross-rack traffic at
//! `rack_size * link_bw / oversubscription`. A [`Topology`] describes that
//! structure; [`crate::Network`] turns each rack's uplink and downlink into
//! shared [`rmr_des::resource::fluid::Fluid`] legs on cross-rack transfers.
//!
//! # Flat equivalence
//!
//! At `oversubscription <= 1.0` a rack's core link capacity is at least the
//! rack's aggregate NIC rate, so the uplink can never be the binding
//! constraint: every cross-rack flow is already limited to its share of the
//! sender's tx port, and a rack's flows sum to at most `rack_size *
//! link_bw <= core_bw`. The uplink/downlink legs are therefore *omitted*
//! entirely in that regime (see [`Topology::constrains`]) — not just sized
//! generously — which makes the hierarchical model replay **bit-identically**
//! against the flat network: the set of fluid legs, their event schedules,
//! and every float accumulation are exactly the ones the flat topology
//! produces. Oversubscribed cores (`> 1.0`) add the two rack legs and model
//! genuine cross-rack contention.

use crate::network::NodeId;

/// Rack structure of a cluster network. `Topology::default()` is flat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Hosts per rack (node ids are dense, racks are contiguous id blocks:
    /// rack of node `i` is `i / rack_size`). `usize::MAX` means flat.
    rack_size: usize,
    /// Ratio of a rack's aggregate NIC rate to its core uplink capacity.
    /// 1.0 = fully provisioned (rearrangeably non-blocking), 4.0 = a rack
    /// can inject only a quarter of its aggregate rate into the core.
    oversubscription: f64,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::flat()
    }
}

impl Topology {
    /// A single non-blocking switch: no racks, no core bottleneck. This is
    /// the paper's testbed (§IV-A, one Mellanox QDR switch).
    pub fn flat() -> Self {
        Topology {
            rack_size: usize::MAX,
            oversubscription: 1.0,
        }
    }

    /// Racks of `rack_size` hosts behind ToR switches whose core uplinks
    /// are oversubscribed by `oversubscription`.
    pub fn racks(rack_size: usize, oversubscription: f64) -> Self {
        assert!(rack_size > 0, "rack size must be positive");
        assert!(
            oversubscription >= 1.0 && oversubscription.is_finite(),
            "oversubscription must be >= 1.0, got {oversubscription}"
        );
        Topology {
            rack_size,
            oversubscription,
        }
    }

    /// True for the single-switch special case.
    pub fn is_flat(&self) -> bool {
        self.rack_size == usize::MAX
    }

    /// Hosts per rack.
    pub fn rack_size(&self) -> usize {
        self.rack_size
    }

    /// Core oversubscription ratio.
    pub fn oversubscription(&self) -> f64 {
        self.oversubscription
    }

    /// The rack a node lives in (0 for everything on a flat topology).
    pub fn rack_of(&self, node: NodeId) -> usize {
        if self.is_flat() {
            0
        } else {
            node.0 as usize / self.rack_size
        }
    }

    /// Do `a` and `b` sit in different racks?
    pub fn cross_rack(&self, a: NodeId, b: NodeId) -> bool {
        !self.is_flat() && self.rack_of(a) != self.rack_of(b)
    }

    /// A rack's core uplink/downlink capacity in bytes/s for the given
    /// per-node link rate.
    pub fn core_bw(&self, link_bw: f64) -> f64 {
        self.rack_size as f64 * link_bw / self.oversubscription
    }

    /// Whether the core can actually bind (and rack legs must be modelled):
    /// only when racks exist *and* the core is oversubscribed. At 1.0 the
    /// uplink capacity equals the rack's aggregate NIC rate, so omitting the
    /// legs is mathematically exact (see module docs) and keeps flat replay
    /// bit-identical.
    pub fn constrains(&self) -> bool {
        !self.is_flat() && self.oversubscription > 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one_rack_everywhere() {
        let t = Topology::flat();
        assert!(t.is_flat());
        assert!(!t.constrains());
        assert_eq!(t.rack_of(NodeId(0)), 0);
        assert_eq!(t.rack_of(NodeId(4_000_000)), 0);
        assert!(!t.cross_rack(NodeId(1), NodeId(4_000_000)));
    }

    #[test]
    fn racks_partition_dense_ids_contiguously() {
        let t = Topology::racks(32, 4.0);
        assert_eq!(t.rack_of(NodeId(0)), 0);
        assert_eq!(t.rack_of(NodeId(31)), 0);
        assert_eq!(t.rack_of(NodeId(32)), 1);
        assert!(t.cross_rack(NodeId(31), NodeId(32)));
        assert!(!t.cross_rack(NodeId(0), NodeId(31)));
        assert!(t.constrains());
    }

    #[test]
    fn fully_provisioned_racks_do_not_constrain() {
        let t = Topology::racks(32, 1.0);
        assert!(!t.is_flat());
        assert!(!t.constrains(), "oversub 1.0 must add no legs");
        assert_eq!(t.core_bw(100.0), 3200.0);
    }

    #[test]
    fn core_bw_scales_inversely_with_oversubscription() {
        let t = Topology::racks(16, 4.0);
        assert_eq!(t.core_bw(100.0), 400.0);
    }
}
