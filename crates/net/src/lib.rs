//! # rmr-net — simulated interconnects for the RDMA-MapReduce reproduction
//!
//! Models the four fabrics the paper evaluates and the two software stacks
//! on top of them:
//!
//! * [`fabric`] — interconnect parameter presets: 1GigE, 10GigE (TOE),
//!   IPoIB (QDR), native IB verbs (QDR). Socket fabrics charge host CPU per
//!   byte and per packet; verbs is OS-bypassed.
//! * [`network`] — per-node full-duplex NICs behind a non-blocking switch;
//!   fluid bandwidth sharing reproduces incast/contention.
//! * [`chan`] — connection-oriented message channels ("Java sockets"): the
//!   transport under vanilla Hadoop's HTTP shuffle and HDFS pipelines.
//! * [`verbs`] — the IB verbs programming model: RC queue pairs, work
//!   requests, completion queues, one-sided RDMA READ/WRITE.
//! * [`ucr`] — OSU's Unified Communication Runtime endpoints over verbs;
//!   what the paper's OSU-IB shuffle engine is written against.

pub mod chan;
pub mod fabric;
pub mod network;
pub mod topology;
pub mod ucr;
pub mod verbs;

pub use chan::{listen, pair, Conn, Listener, ListenerHandle, Wire};
pub use fabric::{FabricKind, FabricParams};
pub use network::{FaultWindow, Network, NodeId};
pub use topology::Topology;
pub use ucr::{ucr_listen, EndPoint, UcrConnector, UcrListener};
pub use verbs::{connect_qp, connect_qp_striped, Completion, Cq, Op, Qp};
