//! An InfiniBand-verbs-shaped interface over the simulated fabric.
//!
//! This mirrors the OpenFabrics programming model the paper's designs are
//! written against (§II-B-1a): reliable-connected queue pairs, work requests
//! posted to send/receive queues, and completions harvested from completion
//! queues. The shuffle engines built on top (UCR for OSU-IB, direct verbs
//! for Hadoop-A's levitated fetches) use exactly the operations a real
//! implementation would: `SEND`/`RECV` rendezvous for control messages and
//! one-sided `RDMA READ`/`RDMA WRITE` for bulk payload.
//!
//! Semantics reproduced:
//! * a QP processes its work queue strictly in order;
//! * a `SEND` does not complete until the peer has a posted receive
//!   (receiver-not-ready blocks the queue, as on real RC QPs);
//! * one-sided RDMA ops involve no remote CPU and no remote completion;
//! * completions can be aggregated onto shared CQs for event-loop servers.

use std::cell::RefCell;
use std::rc::Rc;

use rmr_des::prelude::*;
use rmr_des::sync::{channel, Receiver, Sender};

use crate::network::{Network, NodeId};

/// Work-request opcode, as in `ibv_wr_opcode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Two-sided send (consumes a posted receive at the peer).
    Send,
    /// One-sided write into remote memory.
    RdmaWrite,
    /// One-sided read from remote memory.
    RdmaRead,
    /// Completion of a posted receive (receive-side only).
    Recv,
}

/// A harvested completion, as in `ibv_wc`. `payload` carries the typed
/// message attached to a `SEND` (delivered with the matching `Recv`
/// completion at the peer) — the simulation's stand-in for the bytes that a
/// real receive buffer would now contain.
pub struct Completion<P> {
    /// Caller-chosen work-request id.
    pub wr_id: u64,
    /// What completed.
    pub op: Op,
    /// Message size on the wire.
    pub bytes: u64,
    /// Message attached by the sender (only on `Recv` completions).
    pub payload: Option<P>,
}

/// A completion queue; clone handles freely — QPs hold one.
pub struct Cq<P> {
    rx: Receiver<Completion<P>>,
    tx: Sender<Completion<P>>,
}

impl<P: 'static> Cq<P> {
    /// Creates an empty CQ.
    pub fn new() -> Self {
        let (tx, rx) = channel();
        Cq { rx, tx }
    }

    /// Blocks until the next completion arrives. `None` if every producer
    /// (QP) has been dropped.
    pub async fn next(&self) -> Option<Completion<P>> {
        self.rx.recv().await
    }

    /// Non-blocking poll, as `ibv_poll_cq`.
    pub fn poll(&self) -> Option<Completion<P>> {
        self.rx.try_recv()
    }

    fn sender(&self) -> Sender<Completion<P>> {
        self.tx.clone()
    }
}

impl<P: 'static> Default for Cq<P> {
    fn default() -> Self {
        Self::new()
    }
}

enum WorkRequest<P> {
    Send { wr_id: u64, bytes: u64, payload: P },
    Write { wr_id: u64, bytes: u64 },
    Read { wr_id: u64, bytes: u64 },
}

struct QpShared<P> {
    /// Credits: one per receive buffer posted by the *local* side.
    recv_credits: Semaphore,
    /// wr_ids of posted receives, consumed FIFO.
    recv_wr_ids: RefCell<std::collections::VecDeque<u64>>,
    /// Where the local side's recv completions go.
    recv_cq_tx: RefCell<Option<Sender<Completion<P>>>>,
}

/// One end of a connected reliable queue pair.
pub struct Qp<P: 'static> {
    net: Network,
    local: NodeId,
    peer: NodeId,
    wq: Sender<WorkRequest<P>>,
    local_shared: Rc<QpShared<P>>,
}

/// Creates a connected RC queue pair between `a` and `b`.
///
/// `send_cq_a`/`send_cq_b` receive the send-side completions of the
/// respective ends; receive completions go to the CQ registered via
/// [`Qp::bind_recv_cq`]. Connection setup cost is charged before the pair is
/// usable.
pub async fn connect_qp<P: 'static>(
    net: &Network,
    a: NodeId,
    b: NodeId,
    send_cq_a: &Cq<P>,
    send_cq_b: &Cq<P>,
) -> (Qp<P>, Qp<P>) {
    connect_qp_striped(net, a, b, send_cq_a, send_cq_b, false).await
}

/// [`connect_qp`] with an explicit striping mode: a striped QP spreads the
/// wire bytes of every work request across the fabric's rails (no-op on
/// single-rail fabrics). Real multi-rail verbs stacks do this below the QP
/// abstraction, so the API surface is otherwise identical.
pub async fn connect_qp_striped<P: 'static>(
    net: &Network,
    a: NodeId,
    b: NodeId,
    send_cq_a: &Cq<P>,
    send_cq_b: &Cq<P>,
    striped: bool,
) -> (Qp<P>, Qp<P>) {
    net.connect_delay(a, b).await;
    let shared_a = Rc::new(QpShared {
        recv_credits: Semaphore::new(0),
        recv_wr_ids: RefCell::new(Default::default()),
        recv_cq_tx: RefCell::new(None),
    });
    let shared_b = Rc::new(QpShared {
        recv_credits: Semaphore::new(0),
        recv_wr_ids: RefCell::new(Default::default()),
        recv_cq_tx: RefCell::new(None),
    });
    let qp_a = build_qp(net, a, b, send_cq_a.sender(), &shared_a, &shared_b, striped);
    let qp_b = build_qp(net, b, a, send_cq_b.sender(), &shared_b, &shared_a, striped);
    (qp_a, qp_b)
}

fn build_qp<P: 'static>(
    net: &Network,
    local: NodeId,
    peer: NodeId,
    send_cq: Sender<Completion<P>>,
    local_shared: &Rc<QpShared<P>>,
    peer_shared: &Rc<QpShared<P>>,
    striped: bool,
) -> Qp<P> {
    let (wq_tx, wq_rx) = channel::<WorkRequest<P>>();
    let net2 = net.clone();
    let peer_shared = Rc::clone(peer_shared);
    // The QP engine: drains the work queue strictly in order, modelling the
    // HCA's in-order WQE processing on an RC QP.
    net.sim()
        .spawn_daemon(format!("qp-engine {}->{}", local.0, peer.0), async move {
            while let Some(wr) = wq_rx.recv().await {
                match wr {
                    WorkRequest::Send {
                        wr_id,
                        bytes,
                        payload,
                    } => {
                        // RNR: wait for the peer to post a receive.
                        let permit = peer_shared.recv_credits.acquire(1).await;
                        permit.forget();
                        if striped {
                            net2.transfer_striped(local, peer, bytes).await;
                        } else {
                            net2.transfer(local, peer, bytes).await;
                        }
                        let recv_wr_id = peer_shared
                            .recv_wr_ids
                            .borrow_mut()
                            .pop_front()
                            .expect("recv credit without wr_id");
                        let _ = send_cq.send_now(Completion {
                            wr_id,
                            op: Op::Send,
                            bytes,
                            payload: None,
                        });
                        let recv_tx = peer_shared.recv_cq_tx.borrow().clone();
                        if let Some(tx) = recv_tx {
                            let _ = tx.send_now(Completion {
                                wr_id: recv_wr_id,
                                op: Op::Recv,
                                bytes,
                                payload: Some(payload),
                            });
                        }
                    }
                    WorkRequest::Write { wr_id, bytes } => {
                        if striped {
                            net2.transfer_striped(local, peer, bytes).await;
                        } else {
                            net2.transfer(local, peer, bytes).await;
                        }
                        let _ = send_cq.send_now(Completion {
                            wr_id,
                            op: Op::RdmaWrite,
                            bytes,
                            payload: None,
                        });
                    }
                    WorkRequest::Read { wr_id, bytes } => {
                        // Data flows peer → local; no remote CPU involved
                        // (the remote HCA serves it).
                        if striped {
                            net2.transfer_striped(peer, local, bytes).await;
                        } else {
                            net2.transfer(peer, local, bytes).await;
                        }
                        let _ = send_cq.send_now(Completion {
                            wr_id,
                            op: Op::RdmaRead,
                            bytes,
                            payload: None,
                        });
                    }
                }
            }
        })
        .detach();
    Qp {
        net: net.clone(),
        local,
        peer,
        wq: wq_tx,
        local_shared: Rc::clone(local_shared),
    }
}

impl<P: 'static> Qp<P> {
    /// Registers the CQ that receives this end's `Recv` completions.
    pub fn bind_recv_cq(&self, cq: &Cq<P>) {
        *self.local_shared.recv_cq_tx.borrow_mut() = Some(cq.sender());
    }

    /// Posts a receive buffer (`ibv_post_recv`). Each buffered receive
    /// admits exactly one inbound `SEND`.
    pub fn post_recv(&self, wr_id: u64) {
        self.local_shared.recv_wr_ids.borrow_mut().push_back(wr_id);
        self.local_shared.recv_credits.release_raw(1);
    }

    /// Posts a two-sided send carrying `payload` (`ibv_post_send`, opcode
    /// `IBV_WR_SEND`).
    pub fn post_send(&self, wr_id: u64, bytes: u64, payload: P) {
        if self
            .wq
            .send_now(WorkRequest::Send {
                wr_id,
                bytes,
                payload,
            })
            .is_err()
        {
            panic!("QP engine gone");
        }
    }

    /// Posts a one-sided RDMA write of `bytes` into the peer's registered
    /// memory.
    pub fn post_rdma_write(&self, wr_id: u64, bytes: u64) {
        if self
            .wq
            .send_now(WorkRequest::Write { wr_id, bytes })
            .is_err()
        {
            panic!("QP engine gone");
        }
    }

    /// Posts a one-sided RDMA read of `bytes` from the peer's registered
    /// memory.
    pub fn post_rdma_read(&self, wr_id: u64, bytes: u64) {
        if self
            .wq
            .send_now(WorkRequest::Read { wr_id, bytes })
            .is_err()
        {
            panic!("QP engine gone");
        }
    }

    /// Local node.
    pub fn local(&self) -> NodeId {
        self.local
    }

    /// Remote node.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// The network this QP runs on.
    pub fn network(&self) -> &Network {
        &self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricParams;
    use std::cell::Cell;

    fn fabric(bw: f64) -> FabricParams {
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = bw;
        f.latency = SimDuration::ZERO;
        f.connect_cost = SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        f
    }

    #[test]
    fn send_recv_rendezvous() {
        let sim = Sim::new(1);
        let net = Network::new(&sim, fabric(100.0));
        let a = net.add_node(None);
        let b = net.add_node(None);
        let got = Rc::new(Cell::new(0u64));
        let got2 = Rc::clone(&got);
        let t = Rc::new(Cell::new(0u64));
        let t2 = Rc::clone(&t);
        let net2 = net.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            let cq_a = Cq::<u64>::new();
            let cq_b = Cq::<u64>::new();
            let recv_cq_b = Cq::<u64>::new();
            let (qa, qb) = connect_qp(&net2, a, b, &cq_a, &cq_b).await;
            qb.bind_recv_cq(&recv_cq_b);
            qb.post_recv(7);
            qa.post_send(1, 100, 0xBEEF); // 100 B at 100 B/s → 1 s
            let c = recv_cq_b.next().await.unwrap();
            assert_eq!(c.wr_id, 7);
            assert_eq!(c.op, Op::Recv);
            got2.set(c.payload.unwrap());
            let sc = cq_a.next().await.unwrap();
            assert_eq!(sc.op, Op::Send);
            assert_eq!(sc.wr_id, 1);
            t2.set(sim2.now().as_nanos());
        })
        .detach();
        sim.run();
        assert_eq!(got.get(), 0xBEEF);
        assert_eq!(t.get(), 1_000_000_000);
    }

    #[test]
    fn send_blocks_until_recv_posted() {
        let sim = Sim::new(1);
        let net = Network::new(&sim, fabric(1e9));
        let a = net.add_node(None);
        let b = net.add_node(None);
        let t = Rc::new(Cell::new(0u64));
        let t2 = Rc::clone(&t);
        let net2 = net.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            let cq_a = Cq::<()>::new();
            let cq_b = Cq::<()>::new();
            let recv_b = Cq::<()>::new();
            let (qa, qb) = connect_qp(&net2, a, b, &cq_a, &cq_b).await;
            qb.bind_recv_cq(&recv_b);
            qa.post_send(1, 8, ()); // no recv posted yet → RNR wait
            sim2.sleep(SimDuration::from_secs(3)).await;
            qb.post_recv(2);
            recv_b.next().await.unwrap();
            t2.set(sim2.now().as_nanos());
        })
        .detach();
        sim.run();
        assert!(t.get() >= 3_000_000_000);
    }

    #[test]
    fn rdma_read_pulls_from_peer() {
        // RDMA READ direction: bytes flow peer→local; the local send CQ gets
        // the completion.
        let sim = Sim::new(1);
        let net = Network::new(&sim, fabric(100.0));
        let a = net.add_node(None);
        let b = net.add_node(None);
        let t = Rc::new(Cell::new(0u64));
        let t2 = Rc::clone(&t);
        let net2 = net.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            let cq_a = Cq::<()>::new();
            let cq_b = Cq::<()>::new();
            let (qa, _qb) = connect_qp(&net2, a, b, &cq_a, &cq_b).await;
            qa.post_rdma_read(9, 200); // 200 B at 100 B/s → 2 s
            let c = cq_a.next().await.unwrap();
            assert_eq!(c.op, Op::RdmaRead);
            assert_eq!(c.wr_id, 9);
            t2.set(sim2.now().as_nanos());
        })
        .detach();
        sim.run();
        assert_eq!(t.get(), 2_000_000_000);
    }

    #[test]
    fn striped_qp_reads_across_rails() {
        // Same pull as `rdma_read_pulls_from_peer`, but over two rails: the
        // 200 B read finishes in 1 s instead of 2 s.
        let sim = Sim::new(1);
        let net = Network::new(&sim, fabric(100.0).with_rails(2));
        let a = net.add_node(None);
        let b = net.add_node(None);
        let t = Rc::new(Cell::new(0u64));
        let t2 = Rc::clone(&t);
        let net2 = net.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            let cq_a = Cq::<()>::new();
            let cq_b = Cq::<()>::new();
            let (qa, _qb) = connect_qp_striped(&net2, a, b, &cq_a, &cq_b, true).await;
            qa.post_rdma_read(9, 200);
            let c = cq_a.next().await.unwrap();
            assert_eq!(c.op, Op::RdmaRead);
            t2.set(sim2.now().as_nanos());
        })
        .detach();
        sim.run();
        assert_eq!(t.get(), 1_000_000_000);
    }

    #[test]
    fn work_queue_is_processed_in_order() {
        let sim = Sim::new(1);
        let net = Network::new(&sim, fabric(1_000.0));
        let a = net.add_node(None);
        let b = net.add_node(None);
        let order = Rc::new(RefCell::new(Vec::new()));
        let order2 = Rc::clone(&order);
        let net2 = net.clone();
        sim.spawn(async move {
            let cq_a = Cq::<u32>::new();
            let cq_b = Cq::<u32>::new();
            let recv_b = Cq::<u32>::new();
            let (qa, qb) = connect_qp(&net2, a, b, &cq_a, &cq_b).await;
            qb.bind_recv_cq(&recv_b);
            for i in 0..4 {
                qb.post_recv(100 + i);
            }
            // Mixed sizes: a big message first must still arrive first.
            qa.post_send(1, 900, 1);
            qa.post_send(2, 10, 2);
            qa.post_send(3, 500, 3);
            qa.post_send(4, 10, 4);
            for _ in 0..4 {
                let c = recv_b.next().await.unwrap();
                order2.borrow_mut().push(c.payload.unwrap());
            }
        })
        .detach();
        sim.run();
        assert_eq!(*order.borrow(), vec![1, 2, 3, 4]);
    }
}
