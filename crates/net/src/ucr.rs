//! UCR — the Unified Communication Runtime endpoint library (§II-D).
//!
//! The paper's OSU-IB shuffle is programmed against UCR, OSU's light-weight
//! endpoint abstraction over IB verbs ("an end-point is analogous to a
//! socket connection"). This module reproduces that surface: a server opens
//! a [`UcrListener`] (the `RDMAListener` in the TaskTracker binds one), a
//! client [`UcrConnector`] establishes an [`EndPoint`], and both sides
//! exchange typed messages whose bytes move with verbs `SEND`/`RECV`
//! rendezvous over the RDMA fabric — zero host-CPU per byte.
//!
//! Endpoints pre-post a window of receives (credit-based flow control, as
//! UCR does internally) so senders never stall on RNR in normal operation.

use rmr_des::sync::{channel, Receiver, Semaphore, Sender};

use crate::chan::Wire;
use crate::network::{Network, NodeId};
use crate::verbs::{connect_qp_striped, Completion, Cq, Op, Qp};

/// Receive-window credits each endpoint keeps pre-posted.
const RECV_WINDOW: u64 = 64;

/// One UCR endpoint: a connected, typed, duplex message pipe over verbs.
pub struct EndPoint<M: Wire> {
    qp: Qp<M>,
    send_cq: Cq<M>,
    recv_cq: Cq<M>,
    next_wr: std::cell::Cell<u64>,
    in_flight: std::cell::Cell<u64>,
    /// Serialises blocking sends: concurrent senders on one endpoint must
    /// not consume each other's completions (UCR endpoints synchronise
    /// their send path the same way).
    send_lock: Semaphore,
}

impl<M: Wire> EndPoint<M> {
    fn new(qp: Qp<M>, send_cq: Cq<M>) -> Self {
        let recv_cq = Cq::new();
        qp.bind_recv_cq(&recv_cq);
        for i in 0..RECV_WINDOW {
            qp.post_recv(i);
        }
        EndPoint {
            qp,
            send_cq,
            recv_cq,
            next_wr: std::cell::Cell::new(RECV_WINDOW),
            in_flight: std::cell::Cell::new(0),
            send_lock: Semaphore::new(1),
        }
    }

    /// The node this endpoint lives on.
    pub fn local(&self) -> NodeId {
        self.qp.local()
    }

    /// The node the peer endpoint lives on.
    pub fn peer(&self) -> NodeId {
        self.qp.peer()
    }

    /// Sends `m` and waits for the send completion (the message is on the
    /// wire and landed; with RC semantics that means delivered). Concurrent
    /// callers are serialised per endpoint.
    pub async fn send(&self, m: M) {
        let _guard = self.send_lock.acquire(1).await;
        let wr = self.next_wr.get();
        self.next_wr.set(wr + 1);
        self.qp.post_send(wr, m.wire_size(), m);
        self.in_flight.set(self.in_flight.get() + 1);
        loop {
            let c = self
                .send_cq
                .next()
                .await
                .expect("send CQ closed with sends in flight");
            if c.op == Op::Send {
                self.in_flight.set(self.in_flight.get() - 1);
                if c.wr_id == wr {
                    break;
                }
            }
        }
    }

    /// Posts a send without waiting for its completion ("fire and forget" —
    /// completions are drained lazily by later `send` calls). Used where the
    /// paper's responders stream packets back-to-back.
    pub fn send_nowait(&self, m: M) {
        let wr = self.next_wr.get();
        self.next_wr.set(wr + 1);
        self.qp.post_send(wr, m.wire_size(), m);
        // Drain any already-arrived completions so the CQ can't grow
        // unboundedly under pure streaming.
        while self.send_cq.poll().is_some() {}
    }

    /// Receives the next message, re-posting a receive buffer to keep the
    /// credit window full.
    pub async fn recv(&self) -> Option<M> {
        let c: Completion<M> = self.recv_cq.next().await?;
        debug_assert_eq!(c.op, Op::Recv);
        // Replenish the consumed receive credit.
        let wr = self.next_wr.get();
        self.next_wr.set(wr + 1);
        self.qp.post_recv(wr);
        c.payload
    }
}

/// Server side: accepts endpoint connection requests (the paper's
/// `RDMAListener`).
pub struct UcrListener<M: Wire> {
    node: NodeId,
    incoming: Receiver<EndPoint<M>>,
    tx: Sender<EndPoint<M>>,
    net: Network,
}

/// Cloneable connector used by clients to reach a [`UcrListener`].
pub struct UcrConnector<M: Wire> {
    node: NodeId,
    tx: Sender<EndPoint<M>>,
    net: Network,
}

/// Opens a UCR listener on `node`.
pub fn ucr_listen<M: Wire>(net: &Network, node: NodeId) -> UcrListener<M> {
    let (tx, rx) = channel();
    UcrListener {
        node,
        incoming: rx,
        tx,
        net: net.clone(),
    }
}

impl<M: Wire> UcrListener<M> {
    /// The connector clients use.
    pub fn connector(&self) -> UcrConnector<M> {
        UcrConnector {
            node: self.node,
            tx: self.tx.clone(),
            net: self.net.clone(),
        }
    }

    /// Waits for the next established endpoint.
    pub async fn accept(&self) -> Option<EndPoint<M>> {
        self.incoming.recv().await
    }

    /// The node the listener runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

// Manual impl: `M` itself need not be `Clone` for the connector handle to be.
impl<M: Wire> Clone for UcrConnector<M> {
    fn clone(&self) -> Self {
        UcrConnector {
            node: self.node,
            tx: self.tx.clone(),
            net: self.net.clone(),
        }
    }
}

impl<M: Wire> UcrConnector<M> {
    /// Establishes an endpoint pair from `from`; returns the client end.
    /// Pays QP connection cost (heavier than a TCP handshake; paid once per
    /// ReduceTask × TaskTracker pair, exactly as in the paper's design).
    pub async fn connect(&self, from: NodeId) -> EndPoint<M> {
        self.try_connect(from)
            .await
            .expect("UCR listener dropped while connecting")
    }

    /// [`UcrConnector::connect`], but observing server death instead of
    /// panicking: returns `None` when the listener is gone (the node was
    /// killed). The QP setup cost is still paid — connection management
    /// discovers the dead peer only after the exchange times out.
    pub async fn try_connect(&self, from: NodeId) -> Option<EndPoint<M>> {
        self.try_connect_striped(from, false).await
    }

    /// [`UcrConnector::try_connect`] over a striped QP: every message on the
    /// endpoint pair spreads its wire bytes across the fabric's rails. A
    /// no-op on single-rail fabrics.
    pub async fn try_connect_striped(&self, from: NodeId, striped: bool) -> Option<EndPoint<M>> {
        let client_send_cq = Cq::new();
        let server_send_cq = Cq::new();
        let (qp_client, qp_server) = connect_qp_striped(
            &self.net,
            from,
            self.node,
            &client_send_cq,
            &server_send_cq,
            striped,
        )
        .await;
        let client = EndPoint::new(qp_client, client_send_cq);
        let server = EndPoint::new(qp_server, server_send_cq);
        if self.tx.send_now(server).is_err() {
            return None;
        }
        Some(client)
    }

    /// The node the listener runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricParams;
    use rmr_des::{Sim, SimDuration};
    use std::cell::Cell;
    use std::rc::Rc;

    struct Msg {
        size: u64,
        tag: u32,
    }
    impl Wire for Msg {
        fn wire_size(&self) -> u64 {
            self.size
        }
    }

    fn fabric(bw: f64) -> FabricParams {
        let mut f = FabricParams::ib_verbs_qdr();
        f.link_bw = bw;
        f.latency = SimDuration::ZERO;
        f.connect_cost = SimDuration::ZERO;
        f.cpu_per_message = 0.0;
        f
    }

    #[test]
    fn endpoint_round_trip() {
        let sim = Sim::new(1);
        let net = Network::new(&sim, fabric(100.0));
        let server = net.add_node(None);
        let client = net.add_node(None);
        let listener = ucr_listen::<Msg>(&net, server);
        let connector = listener.connector();

        sim.spawn(async move {
            let ep = listener.accept().await.unwrap();
            while let Some(m) = ep.recv().await {
                ep.send(Msg {
                    size: m.size * 2,
                    tag: m.tag + 1,
                })
                .await;
            }
        })
        .detach();

        let done = Rc::new(Cell::new((0u64, 0u32)));
        let d2 = Rc::clone(&done);
        let sim2 = sim.clone();
        sim.spawn(async move {
            let ep = connector.connect(client).await;
            ep.send(Msg { size: 100, tag: 7 }).await; // 1 s
            let resp = ep.recv().await.unwrap(); // 200 B → 2 s
            d2.set((sim2.now().as_nanos(), resp.tag));
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), (3_000_000_000, 8));
    }

    #[test]
    fn streaming_sends_preserve_order() {
        let sim = Sim::new(1);
        let net = Network::new(&sim, fabric(1e6));
        let server = net.add_node(None);
        let client = net.add_node(None);
        let listener = ucr_listen::<Msg>(&net, server);
        let connector = listener.connector();
        let tags = Rc::new(std::cell::RefCell::new(Vec::new()));
        let tags2 = Rc::clone(&tags);
        sim.spawn(async move {
            let ep = listener.accept().await.unwrap();
            for _ in 0..10 {
                let m = ep.recv().await.unwrap();
                tags2.borrow_mut().push(m.tag);
            }
        })
        .detach();
        sim.spawn(async move {
            let ep = connector.connect(client).await;
            for tag in 0..10 {
                ep.send_nowait(Msg { size: 1_000, tag });
            }
            // Keep the endpoint alive long enough for delivery.
            std::mem::forget(ep);
        })
        .detach();
        sim.run();
        assert_eq!(*tags.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn many_endpoints_share_one_listener() {
        let sim = Sim::new(1);
        let net = Network::new(&sim, fabric(1e9));
        let server = net.add_node(None);
        let listener = ucr_listen::<Msg>(&net, server);
        let connector = listener.connector();
        let served = Rc::new(Cell::new(0u32));
        let served2 = Rc::clone(&served);
        let sim2 = sim.clone();
        sim.spawn(async move {
            // One lightweight receiver task per endpoint, like the paper's
            // RDMAReceiver pulling from its endpoint list.
            while let Some(ep) = listener.accept().await {
                let served3 = Rc::clone(&served2);
                sim2.spawn(async move {
                    let m = ep.recv().await.unwrap();
                    assert!(m.size > 0);
                    served3.set(served3.get() + 1);
                })
                .detach();
            }
        })
        .detach();
        for i in 0..5u32 {
            let c = net.add_node(None);
            let connector = connector.clone();
            sim.spawn(async move {
                let ep = connector.connect(c).await;
                ep.send(Msg { size: 64, tag: i }).await;
            })
            .detach();
        }
        sim.run();
        assert_eq!(served.get(), 5);
    }
}
