//! Property-based tests on HDFS invariants: placement, replication,
//! round-trip content integrity, and accounting, under arbitrary write
//! schedules.

use proptest::prelude::*;

use bytes::Bytes;
use rmr_des::Sim;
use rmr_hdfs::{Blob, HdfsCluster, HdfsConfig};
use rmr_net::{FabricParams, Network};
use rmr_store::{DiskParams, LocalFs};

fn build(seed: u64, datanodes: usize, block_size: u64, replication: u32) -> (Sim, HdfsCluster) {
    let sim = Sim::new(seed);
    let mut fab = FabricParams::ib_verbs_qdr();
    fab.cpu_per_message = 0.0;
    let net = Network::new(&sim, fab);
    let nn = net.add_node(None);
    let hdfs = HdfsCluster::new(
        &sim,
        &net,
        nn,
        HdfsConfig {
            block_size,
            replication,
            packet_size: 64 << 10,
        },
    );
    for i in 0..datanodes {
        let node = net.add_node(None);
        let fs = LocalFs::new(&sim, DiskParams::ssd_sata(), 1, 1 << 30, &format!("dn{i}"));
        hdfs.add_datanode(node, fs);
    }
    (sim, hdfs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn synthetic_writes_conserve_length_and_replicate(
        seed in 1u64..1_000,
        datanodes in 1usize..6,
        replication in 1u32..4,
        block_kb in 1u64..64,
        writes in proptest::collection::vec(0u64..200_000, 1..8),
    ) {
        let (sim, hdfs) = build(seed, datanodes, block_kb << 10, replication);
        let total: u64 = writes.iter().sum();
        let h = hdfs.clone();
        let ok = std::rc::Rc::new(std::cell::Cell::new(false));
        let ok2 = std::rc::Rc::clone(&ok);
        sim.spawn(async move {
            let client = h.dn_node(0);
            let mut w = h.create("/f", client).await.unwrap();
            for bytes in writes {
                w.write(Blob::synthetic(bytes)).await.unwrap();
            }
            w.close().await.unwrap();
            assert_eq!(h.file_size("/f").unwrap(), total);
            let eff = (replication as usize).min(h.datanode_count()) as u64;
            let locs = h.split_locations("/f").unwrap();
            let mut sum = 0;
            for (meta, nodes) in &locs {
                assert_eq!(meta.replicas.len() as u64, eff, "replica count");
                // simcheck: allow(unordered-map) -- only len() is used, never iterated
                let distinct: std::collections::HashSet<_> = meta.replicas.iter().collect();
                assert_eq!(distinct.len(), meta.replicas.len(), "replicas distinct");
                assert_eq!(nodes[0], client, "writer-local first replica");
                assert!(meta.size <= (block_kb << 10).max(1), "block within bound");
                sum += meta.size;
            }
            assert_eq!(sum, total, "blocks partition the file");
            ok2.set(true);
        })
        .detach();
        sim.run();
        prop_assert!(ok.get(), "simulation quiesced before the writes finished");
    }

    #[test]
    fn real_content_round_trips_through_blocks(
        seed in 1u64..1_000,
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..500), 1..6),
        block_kb in 1u64..8,
    ) {
        let (sim, hdfs) = build(seed, 3, block_kb << 10, 2);
        let expected: Vec<u8> = chunks.iter().flatten().copied().collect();
        let h = hdfs.clone();
        let ok = std::rc::Rc::new(std::cell::Cell::new(false));
        let ok2 = std::rc::Rc::clone(&ok);
        sim.spawn(async move {
            let client = h.dn_node(1);
            let mut w = h.create("/blob", client).await.unwrap();
            for c in chunks {
                w.write(Blob::real(Bytes::from(c))).await.unwrap();
            }
            w.close().await.unwrap();
            // Read back from a different node.
            let reader_node = h.dn_node(2);
            let mut r = h.open("/blob", reader_node).await.unwrap();
            let mut got = Vec::new();
            while let Some(b) = r.next_block().await.unwrap() {
                if let Some(d) = b.data {
                    got.extend_from_slice(&d);
                }
            }
            assert_eq!(got, expected, "content survives block boundaries");
            ok2.set(true);
        })
        .detach();
        sim.run();
        prop_assert!(ok.get());
    }

    #[test]
    fn delete_always_cleans_every_replica(
        seed in 1u64..500,
        files in 1usize..6,
        bytes in 1u64..100_000,
    ) {
        let (sim, hdfs) = build(seed, 4, 16 << 10, 3);
        let h = hdfs.clone();
        let ok = std::rc::Rc::new(std::cell::Cell::new(false));
        let ok2 = std::rc::Rc::clone(&ok);
        sim.spawn(async move {
            let client = h.dn_node(0);
            for i in 0..files {
                let mut w = h.create(&format!("/f{i}"), client).await.unwrap();
                w.write(Blob::synthetic(bytes)).await.unwrap();
                w.close().await.unwrap();
            }
            for i in 0..files {
                h.delete(&format!("/f{i}"), client).await.unwrap();
            }
            assert!(h.list().is_empty(), "namespace empty after deletes");
            ok2.set(true);
        })
        .detach();
        sim.run();
        prop_assert!(ok.get());
    }
}
