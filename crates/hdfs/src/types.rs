//! Common HDFS types: ids, configuration, data blobs, errors.

use bytes::Bytes;

/// Identifies an HDFS block cluster-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

/// HDFS configuration; the paper tunes `block_size` per system
/// (§IV-B: 256 MB for 10GigE/IPoIB/OSU-IB TeraSort, 128 MB for Hadoop-A,
/// 64 MB for Sort).
#[derive(Debug, Clone)]
pub struct HdfsConfig {
    /// `dfs.block.size`.
    pub block_size: u64,
    /// `dfs.replication`. The paper-era default is 3; experiments at this
    /// scale commonly ran dfs.replication of the job output at 1 — both are
    /// supported and the cluster presets pick.
    pub replication: u32,
    /// Bytes moved per pipeline packet while writing (io.file.buffer.size
    /// scale; controls write pipelining granularity).
    pub packet_size: u64,
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            block_size: 256 << 20,
            replication: 3,
            packet_size: 4 << 20,
        }
    }
}

/// A chunk of file data moving through the system: always a byte count, and
/// in "real data plane" runs also the bytes themselves.
#[derive(Debug, Clone, Default)]
pub struct Blob {
    /// Logical length in bytes.
    pub len: u64,
    /// Actual content, when the run materialises data (tests/examples);
    /// `None` in synthetic paper-scale runs.
    pub data: Option<Bytes>,
}

impl Blob {
    /// A content-free blob of `len` bytes.
    pub fn synthetic(len: u64) -> Self {
        Blob { len, data: None }
    }

    /// A blob carrying real bytes.
    pub fn real(data: Bytes) -> Self {
        Blob {
            len: data.len() as u64,
            data: Some(data),
        }
    }

    /// Checks the len/data invariant.
    pub fn is_consistent(&self) -> bool {
        match &self.data {
            Some(d) => d.len() as u64 == self.len,
            None => true,
        }
    }
}

/// HDFS operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdfsError {
    /// Path missing.
    NotFound(String),
    /// Path already exists.
    Exists(String),
    /// No DataNodes registered / not enough for replication.
    NoDataNodes,
    /// Underlying local filesystem failure.
    Storage(String),
}

impl std::fmt::Display for HdfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HdfsError::NotFound(p) => write!(f, "hdfs: not found: {p}"),
            HdfsError::Exists(p) => write!(f, "hdfs: already exists: {p}"),
            HdfsError::NoDataNodes => write!(f, "hdfs: no datanodes available"),
            HdfsError::Storage(e) => write!(f, "hdfs: storage error: {e}"),
        }
    }
}

impl std::error::Error for HdfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_invariants() {
        assert!(Blob::synthetic(100).is_consistent());
        let b = Blob::real(Bytes::from_static(b"hello"));
        assert_eq!(b.len, 5);
        assert!(b.is_consistent());
        let broken = Blob {
            len: 99,
            data: Some(Bytes::from_static(b"x")),
        };
        assert!(!broken.is_consistent());
    }

    #[test]
    fn default_config_matches_hadoop_era_defaults() {
        let c = HdfsConfig::default();
        assert_eq!(c.replication, 3);
        assert_eq!(c.block_size, 256 << 20);
    }
}
