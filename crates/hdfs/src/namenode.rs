//! The NameNode: file-system namespace and block placement.
//!
//! Keeps the file → blocks → replica-locations mapping and implements the
//! default placement policy of the era: first replica on the writer's own
//! DataNode (if it is one), the rest on distinct randomly-chosen nodes.
//! Rack awareness is omitted — the paper's testbed is a single QDR switch.

use std::collections::BTreeMap;

use rand::Rng;

use rmr_net::NodeId;

use crate::types::{BlockId, HdfsError};

/// One block's metadata.
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// The block id.
    pub id: BlockId,
    /// Bytes stored.
    pub size: u64,
    /// DataNode indices (into the cluster's datanode table) holding replicas,
    /// pipeline order.
    pub replicas: Vec<usize>,
}

#[derive(Debug, Default, Clone)]
struct FileMeta {
    blocks: Vec<BlockMeta>,
    complete: bool,
}

/// The namespace. Owned by [`crate::HdfsCluster`]; not a public entry point
/// on its own, but exposed for white-box tests and tools.
#[derive(Default)]
pub struct NameNode {
    files: BTreeMap<String, FileMeta>,
    next_block: u64,
}

impl NameNode {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new, empty, in-flight file.
    pub fn create(&mut self, path: &str) -> Result<(), HdfsError> {
        if self.files.contains_key(path) {
            return Err(HdfsError::Exists(path.to_string()));
        }
        self.files.insert(path.to_string(), FileMeta::default());
        Ok(())
    }

    /// True if the path exists (complete or in flight).
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Removes a file, returning its blocks for DataNode-side cleanup.
    pub fn delete(&mut self, path: &str) -> Result<Vec<BlockMeta>, HdfsError> {
        self.files
            .remove(path)
            .map(|f| f.blocks)
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))
    }

    /// Allocates the next block of `path`, choosing `replication` pipeline
    /// targets among `n_datanodes` with the writer-local-first policy.
    pub fn add_block(
        &mut self,
        path: &str,
        writer_dn: Option<usize>,
        n_datanodes: usize,
        replication: u32,
        rng: &mut impl Rng,
    ) -> Result<BlockMeta, HdfsError> {
        if n_datanodes == 0 {
            return Err(HdfsError::NoDataNodes);
        }
        let file = self
            .files
            .get_mut(path)
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))?;
        let want = (replication as usize).min(n_datanodes);
        let mut replicas = Vec::with_capacity(want);
        if let Some(local) = writer_dn {
            replicas.push(local);
        }
        while replicas.len() < want {
            let cand = rng.gen_range(0..n_datanodes);
            if !replicas.contains(&cand) {
                replicas.push(cand);
            }
        }
        let id = BlockId(self.next_block);
        self.next_block += 1;
        let meta = BlockMeta {
            id,
            size: 0,
            replicas,
        };
        file.blocks.push(meta.clone());
        Ok(meta)
    }

    /// Records the final size of a block after its pipeline closes.
    pub fn seal_block(&mut self, path: &str, id: BlockId, size: u64) -> Result<(), HdfsError> {
        let file = self
            .files
            .get_mut(path)
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))?;
        let b = file
            .blocks
            .iter_mut()
            .find(|b| b.id == id)
            .ok_or_else(|| HdfsError::NotFound(format!("{path}/{id}")))?;
        b.size = size;
        Ok(())
    }

    /// Marks a file complete (visible with final length).
    pub fn complete(&mut self, path: &str) -> Result<(), HdfsError> {
        self.files
            .get_mut(path)
            .map(|f| f.complete = true)
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))
    }

    /// Block list with replica locations (the input-split query MapReduce
    /// uses for locality scheduling).
    pub fn blocks(&self, path: &str) -> Result<Vec<BlockMeta>, HdfsError> {
        self.files
            .get(path)
            .map(|f| f.blocks.clone())
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))
    }

    /// Total file length.
    pub fn file_size(&self, path: &str) -> Result<u64, HdfsError> {
        self.files
            .get(path)
            .map(|f| f.blocks.iter().map(|b| b.size).sum())
            .ok_or_else(|| HdfsError::NotFound(path.to_string()))
    }

    /// All paths, sorted (deterministic listings).
    pub fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.keys().cloned().collect();
        v.sort();
        v
    }

    /// Translates placement onto `NodeId`s given the datanode table.
    pub fn locate(replicas: &[usize], datanode_nodes: &[NodeId]) -> Vec<NodeId> {
        replicas.iter().map(|&i| datanode_nodes[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn create_and_duplicate() {
        let mut nn = NameNode::new();
        nn.create("/a").unwrap();
        assert!(matches!(nn.create("/a"), Err(HdfsError::Exists(_))));
        assert!(nn.exists("/a"));
        assert!(!nn.exists("/b"));
    }

    #[test]
    fn local_first_placement() {
        let mut nn = NameNode::new();
        let mut rng = SmallRng::seed_from_u64(1);
        nn.create("/f").unwrap();
        let b = nn.add_block("/f", Some(3), 8, 3, &mut rng).unwrap();
        assert_eq!(b.replicas[0], 3);
        assert_eq!(b.replicas.len(), 3);
        let unique: std::collections::BTreeSet<_> = b.replicas.iter().collect();
        assert_eq!(unique.len(), 3, "replicas must be distinct");
    }

    #[test]
    fn replication_clamps_to_cluster_size() {
        let mut nn = NameNode::new();
        let mut rng = SmallRng::seed_from_u64(1);
        nn.create("/f").unwrap();
        let b = nn.add_block("/f", None, 2, 3, &mut rng).unwrap();
        assert_eq!(b.replicas.len(), 2);
    }

    #[test]
    fn file_size_sums_sealed_blocks() {
        let mut nn = NameNode::new();
        let mut rng = SmallRng::seed_from_u64(1);
        nn.create("/f").unwrap();
        let b1 = nn.add_block("/f", None, 4, 1, &mut rng).unwrap();
        nn.seal_block("/f", b1.id, 100).unwrap();
        let b2 = nn.add_block("/f", None, 4, 1, &mut rng).unwrap();
        nn.seal_block("/f", b2.id, 50).unwrap();
        nn.complete("/f").unwrap();
        assert_eq!(nn.file_size("/f").unwrap(), 150);
        assert_eq!(nn.blocks("/f").unwrap().len(), 2);
    }

    #[test]
    fn delete_returns_blocks() {
        let mut nn = NameNode::new();
        let mut rng = SmallRng::seed_from_u64(1);
        nn.create("/f").unwrap();
        nn.add_block("/f", None, 4, 1, &mut rng).unwrap();
        let blocks = nn.delete("/f").unwrap();
        assert_eq!(blocks.len(), 1);
        assert!(!nn.exists("/f"));
    }

    #[test]
    fn no_datanodes_is_an_error() {
        let mut nn = NameNode::new();
        let mut rng = SmallRng::seed_from_u64(1);
        nn.create("/f").unwrap();
        assert!(matches!(
            nn.add_block("/f", None, 0, 3, &mut rng),
            Err(HdfsError::NoDataNodes)
        ));
    }
}
