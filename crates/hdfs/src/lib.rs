//! # rmr-hdfs — a miniature HDFS substrate
//!
//! The Hadoop Distributed File System as the MapReduce layer needs it:
//! a NameNode ([`namenode`]) managing the namespace and block placement,
//! DataNodes storing block replicas on their local disks, pipelined
//! replicated writes, and locality-aware reads ([`cluster`]).
//!
//! Input data (TeraGen / RandomWriter), job output, and nothing else flow
//! through HDFS — intermediate map outputs stay on TaskTracker-local disks,
//! exactly as in Hadoop 0.20.x.

pub mod cluster;
pub mod namenode;
pub mod types;

pub use cluster::{BlockRead, DataNode, HdfsCluster, HdfsReader, HdfsWriter};
pub use namenode::{BlockMeta, NameNode};
pub use types::{Blob, BlockId, HdfsConfig, HdfsError};
