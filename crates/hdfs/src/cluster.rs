//! The HDFS cluster facade: DataNodes, pipelined writes, locality reads.
//!
//! Write path: the client asks the NameNode for a block allocation, then
//! streams packets down the replication pipeline (client → DN1 → DN2 → DN3);
//! each hop's network transfer and each replica's disk write proceed
//! concurrently per packet, as the real pipeline does. Read path: the client
//! prefers a replica on its own node (short-circuit local read), else pulls
//! from a remote DataNode, overlapping the remote disk read with the wire
//! transfer.
//!
//! Heartbeats and block reports are not modelled: they carry no bytes that
//! matter at these scales, and failures (the paper's future work) are
//! injected at the MapReduce layer instead.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use bytes::{Bytes, BytesMut};

use rmr_des::prelude::*;
use rmr_des::sync::join_all;
use rmr_net::{Network, NodeId};
use rmr_store::LocalFs;

use crate::namenode::{BlockMeta, NameNode};
use crate::types::{Blob, BlockId, HdfsConfig, HdfsError};

/// One DataNode: a cluster node plus its local filesystem.
#[derive(Clone)]
pub struct DataNode {
    /// The host this DataNode runs on.
    pub node: NodeId,
    /// Its block store.
    pub fs: LocalFs,
}

/// Cluster-wide HDFS handle (cheap to clone).
#[derive(Clone)]
pub struct HdfsCluster {
    sim: Sim,
    net: Network,
    nn_node: NodeId,
    cfg: Rc<HdfsConfig>,
    nn: Rc<RefCell<NameNode>>,
    dns: Rc<RefCell<Vec<DataNode>>>,
    contents: Rc<RefCell<BTreeMap<BlockId, Bytes>>>,
}

/// Size of a NameNode RPC on the wire.
const NN_RPC_BYTES: u64 = 256;

impl HdfsCluster {
    /// Creates an HDFS cluster with its NameNode on `nn_node`.
    pub fn new(sim: &Sim, net: &Network, nn_node: NodeId, cfg: HdfsConfig) -> Self {
        HdfsCluster {
            sim: sim.clone(),
            net: net.clone(),
            nn_node,
            cfg: Rc::new(cfg),
            nn: Rc::new(RefCell::new(NameNode::new())),
            dns: Rc::new(RefCell::new(Vec::new())),
            contents: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }

    /// Registers a DataNode.
    pub fn add_datanode(&self, node: NodeId, fs: LocalFs) {
        self.dns.borrow_mut().push(DataNode { node, fs });
    }

    /// The configuration in force.
    pub fn config(&self) -> &HdfsConfig {
        &self.cfg
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// The network handle.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Number of registered DataNodes.
    pub fn datanode_count(&self) -> usize {
        self.dns.borrow().len()
    }

    /// The DataNode index running on `node`, if any.
    pub fn dn_index_of(&self, node: NodeId) -> Option<usize> {
        self.dns.borrow().iter().position(|d| d.node == node)
    }

    /// The host of DataNode `i`.
    pub fn dn_node(&self, i: usize) -> NodeId {
        self.dns.borrow()[i].node
    }

    async fn nn_rpc(&self, client: NodeId) {
        self.net.transfer(client, self.nn_node, NN_RPC_BYTES).await;
        self.net.transfer(self.nn_node, client, NN_RPC_BYTES).await;
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.nn.borrow().exists(path)
    }

    /// Total length of `path`.
    pub fn file_size(&self, path: &str) -> Result<u64, HdfsError> {
        self.nn.borrow().file_size(path)
    }

    /// Sorted listing of all paths.
    pub fn list(&self) -> Vec<String> {
        self.nn.borrow().list()
    }

    /// Block metadata with host locations — the input-split query.
    pub fn split_locations(&self, path: &str) -> Result<Vec<(BlockMeta, Vec<NodeId>)>, HdfsError> {
        let blocks = self.nn.borrow().blocks(path)?;
        let dns = self.dns.borrow();
        let nodes: Vec<NodeId> = dns.iter().map(|d| d.node).collect();
        Ok(blocks
            .into_iter()
            .map(|b| {
                let locs = NameNode::locate(&b.replicas, &nodes);
                (b, locs)
            })
            .collect())
    }

    /// Deletes a file and its replicas.
    pub async fn delete(&self, path: &str, client: NodeId) -> Result<(), HdfsError> {
        self.nn_rpc(client).await;
        let blocks = self.nn.borrow_mut().delete(path)?;
        let dns = self.dns.borrow().clone();
        for b in blocks {
            self.contents.borrow_mut().remove(&b.id);
            for &r in &b.replicas {
                let _ = dns[r].fs.delete(&b.id.to_string());
            }
        }
        Ok(())
    }

    /// Opens `path` for writing from `client` at the configured replication.
    pub async fn create(&self, path: &str, client: NodeId) -> Result<HdfsWriter, HdfsError> {
        let replication = self.cfg.replication;
        self.create_with_replication(path, client, replication)
            .await
    }

    /// Opens `path` for writing with an explicit per-file replication factor
    /// (Hadoop's `FileSystem.create(..., replication, ...)`).
    pub async fn create_with_replication(
        &self,
        path: &str,
        client: NodeId,
        replication: u32,
    ) -> Result<HdfsWriter, HdfsError> {
        self.nn_rpc(client).await;
        self.nn.borrow_mut().create(path)?;
        Ok(HdfsWriter {
            cluster: self.clone(),
            path: path.to_string(),
            client,
            replication,
            cur: None,
            closed: false,
        })
    }

    /// Opens `path` for reading from `client`.
    pub async fn open(&self, path: &str, client: NodeId) -> Result<HdfsReader, HdfsError> {
        self.nn_rpc(client).await;
        let blocks = self.nn.borrow().blocks(path)?;
        Ok(HdfsReader {
            cluster: self.clone(),
            blocks,
            idx: 0,
            client,
        })
    }

    /// Reads one specific block (a map task reading its split).
    pub async fn read_block(
        &self,
        block: &BlockMeta,
        client: NodeId,
    ) -> Result<BlockRead, HdfsError> {
        let dns = self.dns.borrow().clone();
        // Prefer a local replica (short-circuit read).
        let chosen = block
            .replicas
            .iter()
            .copied()
            .find(|&r| dns[r].node == client)
            .or_else(|| block.replicas.first().copied())
            .ok_or(HdfsError::NoDataNodes)?;
        let dn = &dns[chosen];
        let local = dn.node == client;
        let mut reader = dn
            .fs
            .reader(&block.id.to_string())
            .map_err(|e| HdfsError::Storage(e.to_string()))?;
        if local {
            reader
                .read_exact(block.size)
                .await
                .map_err(|e| HdfsError::Storage(e.to_string()))?;
            self.sim
                .metrics()
                .add("hdfs.local_read_bytes", block.size as f64);
        } else {
            // Remote: overlap the DataNode's disk read with the transfer.
            let size = block.size;
            let net = self.net.clone();
            let (src, dst) = (dn.node, client);
            let disk_leg: Pin<Box<dyn Future<Output = ()>>> = Box::pin(async move {
                reader
                    .read_exact(size)
                    .await
                    .expect("replica shorter than block meta");
            });
            let wire_leg: Pin<Box<dyn Future<Output = ()>>> = Box::pin(async move {
                net.transfer(src, dst, size).await;
            });
            join_all(vec![disk_leg, wire_leg]).await;
            self.sim
                .metrics()
                .add("hdfs.remote_read_bytes", block.size as f64);
        }
        let data = self.contents.borrow().get(&block.id).cloned();
        Ok(BlockRead {
            id: block.id,
            size: block.size,
            local,
            data,
        })
    }
}

/// The result of reading one block.
#[derive(Debug, Clone)]
pub struct BlockRead {
    /// The block read.
    pub id: BlockId,
    /// Its length.
    pub size: u64,
    /// Whether a local replica served it.
    pub local: bool,
    /// Content in real-data runs.
    pub data: Option<Bytes>,
}

struct OpenBlock {
    meta: BlockMeta,
    written: u64,
    writers: Vec<rmr_store::FileWriter>,
    data: Option<BytesMut>,
}

/// Streaming writer with pipelined replication.
pub struct HdfsWriter {
    cluster: HdfsCluster,
    path: String,
    client: NodeId,
    replication: u32,
    cur: Option<OpenBlock>,
    closed: bool,
}

impl HdfsWriter {
    /// Appends a blob. Synthetic blobs split exactly at block boundaries;
    /// blobs carrying real content are kept whole within one block — the
    /// simulation-level stand-in for record readers compensating at block
    /// boundaries (no record is ever torn). Writers of real data should
    /// therefore chunk their blobs to at most the block size.
    pub async fn write(&mut self, blob: Blob) -> Result<(), HdfsError> {
        debug_assert!(blob.is_consistent());
        assert!(!self.closed, "write after close");
        let block_size = self.cluster.cfg.block_size;
        if blob.data.is_some() {
            // Whole-blob path: seal the current block first if the blob
            // doesn't fit, then append the blob intact.
            if let Some(cur) = &self.cur {
                if cur.written > 0 && cur.written + blob.len > block_size {
                    self.seal_current().await?;
                }
            }
            if self.cur.is_none() {
                self.open_block().await?;
            }
            let len = blob.len;
            self.pipeline_chunk(len, blob.data).await?;
            if self.cur.as_ref().unwrap().written >= block_size {
                self.seal_current().await?;
            }
            return Ok(());
        }
        let mut offset: u64 = 0;
        while offset < blob.len {
            if self.cur.is_none() {
                self.open_block().await?;
            }
            let cur = self.cur.as_mut().unwrap();
            let room = block_size - cur.written;
            let take = room.min(blob.len - offset);
            let chunk_data = blob
                .data
                .as_ref()
                .map(|d| d.slice(offset as usize..(offset + take) as usize));
            self.pipeline_chunk(take, chunk_data).await?;
            offset += take;
            let cur = self.cur.as_ref().unwrap();
            if cur.written >= block_size {
                self.seal_current().await?;
            }
        }
        Ok(())
    }

    async fn open_block(&mut self) -> Result<(), HdfsError> {
        let c = &self.cluster;
        c.nn_rpc(self.client).await;
        let writer_dn = c.dn_index_of(self.client);
        let n = c.datanode_count();
        let replication = self.replication;
        let meta = {
            let mut nn = c.nn.borrow_mut();
            c.sim
                .with_rng(|rng| nn.add_block(&self.path, writer_dn, n, replication, rng))?
        };
        let dns = c.dns.borrow().clone();
        let writers = meta
            .replicas
            .iter()
            .map(|&r| {
                dns[r]
                    .fs
                    .writer(&meta.id.to_string())
                    .map_err(|e| HdfsError::Storage(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        self.cur = Some(OpenBlock {
            meta,
            written: 0,
            writers,
            data: None,
        });
        Ok(())
    }

    /// Streams one packet-train of `len` bytes down the pipeline in
    /// [`HdfsConfig::packet_size`] packets; network hops and replica disk
    /// writes overlap.
    async fn pipeline_chunk(&mut self, len: u64, data: Option<Bytes>) -> Result<(), HdfsError> {
        let c = self.cluster.clone();
        let cur = self.cur.as_mut().unwrap();
        let packet = c.cfg.packet_size.max(1);
        let mut sent = 0u64;
        while sent < len {
            let take = packet.min(len - sent);
            let mut legs: Vec<Pin<Box<dyn Future<Output = ()>>>> = Vec::new();
            let dns = c.dns.borrow().clone();
            let mut prev = self.client;
            for (i, &r) in cur.meta.replicas.iter().enumerate() {
                let dst = dns[r].node;
                let net = c.net.clone();
                let src = prev;
                legs.push(Box::pin(async move {
                    net.transfer(src, dst, take).await;
                }));
                let w = &cur.writers[i];
                legs.push(Box::pin(async move {
                    w.append(take).await.expect("datanode disk append failed");
                }));
                prev = dst;
            }
            join_all(legs).await;
            sent += take;
        }
        cur.written += len;
        if let Some(d) = data {
            cur.data
                .get_or_insert_with(BytesMut::new)
                .extend_from_slice(&d);
        }
        c.sim.metrics().add("hdfs.bytes_written", len as f64);
        Ok(())
    }

    async fn seal_current(&mut self) -> Result<(), HdfsError> {
        if let Some(cur) = self.cur.take() {
            let c = &self.cluster;
            c.nn_rpc(self.client).await;
            c.nn.borrow_mut()
                .seal_block(&self.path, cur.meta.id, cur.written)?;
            if let Some(d) = cur.data {
                c.contents.borrow_mut().insert(cur.meta.id, d.freeze());
            }
        }
        Ok(())
    }

    /// Seals the trailing partial block and completes the file.
    pub async fn close(mut self) -> Result<(), HdfsError> {
        self.seal_current().await?;
        self.cluster.nn_rpc(self.client).await;
        self.cluster.nn.borrow_mut().complete(&self.path)?;
        self.closed = true;
        Ok(())
    }
}

/// Streaming reader iterating over a file's blocks.
pub struct HdfsReader {
    cluster: HdfsCluster,
    blocks: Vec<BlockMeta>,
    idx: usize,
    client: NodeId,
}

impl HdfsReader {
    /// Reads the next block; `None` at EOF.
    pub async fn next_block(&mut self) -> Result<Option<BlockRead>, HdfsError> {
        if self.idx >= self.blocks.len() {
            return Ok(None);
        }
        let b = self.blocks[self.idx].clone();
        self.idx += 1;
        Ok(Some(self.cluster.read_block(&b, self.client).await?))
    }

    /// Remaining block count.
    pub fn remaining_blocks(&self) -> usize {
        self.blocks.len() - self.idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_net::FabricParams;
    use rmr_store::DiskParams;

    fn quick_setup(
        seed: u64,
        n_dn: usize,
        replication: u32,
        block_size: u64,
    ) -> (Sim, HdfsCluster) {
        let sim = Sim::new(seed);
        let mut fab = FabricParams::ib_verbs_qdr();
        fab.link_bw = 1e9;
        fab.cpu_per_message = 0.0;
        let net = Network::new(&sim, fab);
        let nn = net.add_node(None);
        let cfg = HdfsConfig {
            block_size,
            replication,
            packet_size: 1 << 20,
        };
        let hdfs = HdfsCluster::new(&sim, &net, nn, cfg);
        for i in 0..n_dn {
            let node = net.add_node(None);
            let fs = LocalFs::new(&sim, DiskParams::ssd_sata(), 1, 1 << 30, &format!("dn{i}"));
            hdfs.add_datanode(node, fs);
        }
        (sim, hdfs)
    }

    #[test]
    fn write_read_round_trip_with_content() {
        let (sim, hdfs) = quick_setup(1, 3, 2, 100);
        let h2 = hdfs.clone();
        let ok = Rc::new(std::cell::Cell::new(false));
        let ok2 = Rc::clone(&ok);
        sim.spawn(async move {
            let client = h2.dn_node(0);
            let mut w = h2.create("/data", client).await.unwrap();
            // 250 bytes across 100-byte blocks → 3 blocks.
            let payload: Vec<u8> = (0..250u32).map(|i| (i % 251) as u8).collect();
            w.write(Blob::real(Bytes::from(payload.clone())))
                .await
                .unwrap();
            w.close().await.unwrap();
            assert_eq!(h2.file_size("/data").unwrap(), 250);

            let mut r = h2.open("/data", client).await.unwrap();
            let mut got = Vec::new();
            while let Some(b) = r.next_block().await.unwrap() {
                got.extend_from_slice(&b.data.expect("content present"));
            }
            assert_eq!(got, payload);
            ok2.set(true);
        })
        .detach();
        sim.run();
        assert!(ok.get());
    }

    #[test]
    fn replication_places_copies_on_distinct_nodes() {
        let (sim, hdfs) = quick_setup(2, 4, 3, 1000);
        let h2 = hdfs.clone();
        sim.spawn(async move {
            let client = h2.dn_node(1);
            let mut w = h2.create("/f", client).await.unwrap();
            w.write(Blob::synthetic(500)).await.unwrap();
            w.close().await.unwrap();
            let locs = h2.split_locations("/f").unwrap();
            assert_eq!(locs.len(), 1);
            let (meta, nodes) = &locs[0];
            assert_eq!(meta.replicas.len(), 3);
            // Writer-local first.
            assert_eq!(nodes[0], client);
            // Every replica exists on its DataNode's local fs.
            for &r in &meta.replicas {
                let dn = h2.dns.borrow()[r].clone();
                assert_eq!(dn.fs.size(&meta.id.to_string()).unwrap(), 500);
            }
        })
        .detach();
        sim.run();
    }

    #[test]
    fn local_read_beats_remote_read() {
        // Same data, read once from the writer's node (local) and once from
        // a non-replica node (remote): local must be faster on a slow wire.
        let mut times = Vec::new();
        for reader_is_local in [true, false] {
            let sim = Sim::new(3);
            let mut fab = FabricParams::ib_verbs_qdr();
            fab.link_bw = 1e6; // slow wire: 1 MB/s
            fab.cpu_per_message = 0.0;
            let net = Network::new(&sim, fab);
            let nn = net.add_node(None);
            let hdfs = HdfsCluster::new(
                &sim,
                &net,
                nn,
                HdfsConfig {
                    block_size: 10 << 20,
                    replication: 1,
                    packet_size: 1 << 20,
                },
            );
            for i in 0..2 {
                let node = net.add_node(None);
                let fs = LocalFs::new(&sim, DiskParams::ssd_sata(), 1, 1 << 30, &format!("dn{i}"));
                hdfs.add_datanode(node, fs);
            }
            let h2 = hdfs.clone();
            let sim2 = sim.clone();
            let t = Rc::new(std::cell::Cell::new(0u64));
            let t2 = Rc::clone(&t);
            sim.spawn(async move {
                let writer_node = h2.dn_node(0);
                let mut w = h2.create("/f", writer_node).await.unwrap();
                w.write(Blob::synthetic(4 << 20)).await.unwrap();
                w.close().await.unwrap();
                let start = sim2.now();
                let reader = if reader_is_local {
                    writer_node
                } else {
                    h2.dn_node(1)
                };
                let mut r = h2.open("/f", reader).await.unwrap();
                while let Some(_b) = r.next_block().await.unwrap() {}
                t2.set((sim2.now() - start).as_nanos());
            })
            .detach();
            sim.run();
            times.push(t.get());
        }
        assert!(
            times[0] * 3 < times[1],
            "local {} vs remote {}",
            times[0],
            times[1]
        );
    }

    #[test]
    fn delete_removes_replicas_and_content() {
        let (sim, hdfs) = quick_setup(4, 2, 2, 1000);
        let h2 = hdfs.clone();
        sim.spawn(async move {
            let client = h2.dn_node(0);
            let mut w = h2.create("/f", client).await.unwrap();
            w.write(Blob::real(Bytes::from_static(b"abcdef")))
                .await
                .unwrap();
            w.close().await.unwrap();
            let blocks = h2.nn.borrow().blocks("/f").unwrap();
            h2.delete("/f", client).await.unwrap();
            assert!(!h2.exists("/f"));
            for b in blocks {
                assert!(h2.contents.borrow().get(&b.id).is_none());
                for dn in h2.dns.borrow().iter() {
                    assert!(!dn.fs.exists(&b.id.to_string()));
                }
            }
        })
        .detach();
        sim.run();
    }

    #[test]
    fn listing_is_sorted_and_complete() {
        let (sim, hdfs) = quick_setup(5, 2, 1, 1000);
        let h2 = hdfs.clone();
        sim.spawn(async move {
            let c = h2.dn_node(0);
            for p in ["/b", "/a", "/c"] {
                let w = h2.create(p, c).await.unwrap();
                w.close().await.unwrap();
            }
            assert_eq!(h2.list(), vec!["/a", "/b", "/c"]);
        })
        .detach();
        sim.run();
    }
}
