//! Property-based tests on the storage layer: timing monotonicity, page
//! cache bounds, and filesystem accounting under arbitrary workloads.

use proptest::prelude::*;

use rmr_des::{Sim, SimDuration};
use rmr_store::{DiskParams, LocalFs, PageCache};

fn quick_disk(bw: f64) -> DiskParams {
    DiskParams {
        name: "prop",
        seq_bw: bw,
        access_latency: SimDuration::from_micros(100),
        queue_depth: 1,
        max_request: 1 << 20,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Writing then fully reading back always takes at least
    /// bytes/bandwidth of device time when the page cache is disabled.
    #[test]
    fn io_time_is_bounded_below_by_bandwidth(
        sizes in proptest::collection::vec(1u64..200_000, 1..8),
    ) {
        let sim = Sim::new(1);
        let bw = 1e6;
        let fs = LocalFs::new(&sim, quick_disk(bw), 1, 0, "t");
        let total: u64 = sizes.iter().sum();
        let fs2 = fs.clone();
        sim.spawn(async move {
            for (i, sz) in sizes.iter().enumerate() {
                let w = fs2.writer(&format!("f{i}")).unwrap();
                w.append(*sz).await.unwrap();
            }
            for (i, sz) in sizes.iter().enumerate() {
                let mut r = fs2.reader(&format!("f{i}")).unwrap();
                r.read_exact(*sz).await.unwrap();
            }
        })
        .detach();
        let end = sim.run();
        let min_secs = 2.0 * total as f64 / bw;
        prop_assert!(
            end.as_secs_f64() + 1e-6 >= min_secs,
            "elapsed {} < device floor {}",
            end.as_secs_f64(),
            min_secs
        );
    }

    /// The page cache never exceeds its budget, and full residency makes
    /// rereads free of disk charges.
    #[test]
    fn page_cache_budget_and_hits(
        ops in proptest::collection::vec((0u64..8, 1u64..5_000), 1..100),
        budget in 0u64..20_000,
    ) {
        let c = PageCache::new(budget);
        for (file, bytes) in ops {
            let _miss = c.read(file, bytes, bytes.max(1));
            prop_assert!(c.used() <= budget);
            if bytes <= budget {
                // Fully resident now → the next identical read is free.
                prop_assert_eq!(c.read(file, bytes, bytes.max(1)), 0);
            }
            prop_assert!(c.used() <= budget);
        }
        let (hits, misses) = c.stats();
        prop_assert!(hits + misses > 0 || budget == 0 || hits + misses == 0);
    }

    /// More disks never make the same concurrent workload slower.
    #[test]
    fn jbod_scaling_is_monotone(files in 2usize..8, size in 10_000u64..100_000) {
        let mut times = Vec::new();
        for disks in [1usize, 2] {
            let sim = Sim::new(7);
            let fs = LocalFs::new(&sim, quick_disk(1e6), disks, 0, "t");
            for i in 0..files {
                let fs2 = fs.clone();
                sim.spawn(async move {
                    let w = fs2.writer(&format!("f{i}")).unwrap();
                    w.append(size).await.unwrap();
                })
                .detach();
            }
            times.push(sim.run().as_secs_f64());
        }
        prop_assert!(times[1] <= times[0] + 1e-6, "2 disks slower: {times:?}");
    }

    /// used_bytes equals the sum of everything appended minus deletions.
    #[test]
    fn accounting_is_exact(
        appends in proptest::collection::vec((0usize..5, 1u64..10_000), 1..30),
    ) {
        let sim = Sim::new(3);
        let fs = LocalFs::new(&sim, quick_disk(1e9), 2, 1 << 20, "t");
        // simcheck: allow(unordered-map) -- model checked by keyed lookup, not iteration
        let mut expect = std::collections::HashMap::<usize, u64>::new();
        for (f, b) in &appends {
            *expect.entry(*f).or_default() += *b;
        }
        let appends2 = appends.clone();
        let fs2 = fs.clone();
        sim.spawn(async move {
            for (f, b) in appends2 {
                let w = fs2.writer(&format!("f{f}")).unwrap();
                w.append(b).await.unwrap();
            }
        })
        .detach();
        sim.run();
        let total: u64 = expect.values().sum();
        prop_assert_eq!(fs.used_bytes(), total);
        for (f, b) in expect {
            prop_assert_eq!(fs.size(&format!("f{f}")).unwrap(), b);
        }
    }
}
