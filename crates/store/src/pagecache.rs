//! An OS page-cache model.
//!
//! Vanilla Hadoop and Hadoop-A have no explicit intermediate-data cache, but
//! they are not reading cold disks either: recently written map outputs are
//! often still in the OS page cache. Omitting this would hand the paper's
//! PrefetchCache an unrealistically large win, so the model includes it.
//!
//! Granularity is per-file byte counts with LRU eviction across files. A
//! read's hit fraction is the cached share of the file at read time; the
//! miss fraction is charged to the disk. Reads and writes both populate the
//! cache (Linux behaviour for buffered I/O).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A per-node page cache with a fixed byte budget.
#[derive(Clone)]
pub struct PageCache {
    inner: Rc<RefCell<Inner>>,
}

struct Inner {
    budget: u64,
    used: u64,
    /// file id → (cached bytes, last-touch tick)
    files: BTreeMap<u64, (u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl PageCache {
    /// Creates a cache with `budget` bytes (0 disables caching entirely).
    pub fn new(budget: u64) -> Self {
        PageCache {
            inner: Rc::new(RefCell::new(Inner {
                budget,
                used: 0,
                files: BTreeMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
            })),
        }
    }

    /// Bytes currently cached.
    pub fn used(&self) -> u64 {
        self.inner.borrow().used
    }

    /// Configured budget.
    pub fn budget(&self) -> u64 {
        self.inner.borrow().budget
    }

    /// (hit bytes, miss bytes) observed so far.
    pub fn stats(&self) -> (u64, u64) {
        let i = self.inner.borrow();
        (i.hits, i.misses)
    }

    /// Records `bytes` of file `file` entering the cache (on write or on
    /// read fill), evicting least-recently-used files as needed. The touched
    /// file itself is never evicted by its own insertion.
    pub fn insert(&self, file: u64, bytes: u64, file_size: u64) {
        let mut i = self.inner.borrow_mut();
        if i.budget == 0 {
            return;
        }
        i.tick += 1;
        let tick = i.tick;
        let entry = i.files.entry(file).or_insert((0, tick));
        let new_cached = (entry.0 + bytes).min(file_size.max(entry.0 + bytes));
        let delta = new_cached - entry.0;
        entry.0 = new_cached;
        entry.1 = tick;
        i.used += delta;
        // Evict LRU files (never the one just touched) until within budget.
        while i.used > i.budget {
            let victim = i
                .files
                .iter()
                .filter(|(id, _)| **id != file)
                .min_by_key(|(_, (_, t))| *t)
                .map(|(id, _)| *id);
            match victim {
                Some(v) => {
                    let (b, _) = i.files.remove(&v).unwrap();
                    i.used -= b;
                }
                None => {
                    // Only the touched file remains; clamp it to the budget.
                    let over = i.used - i.budget;
                    let e = i.files.get_mut(&file).unwrap();
                    e.0 -= over.min(e.0);
                    i.used = i.budget.min(i.used - over);
                    break;
                }
            }
        }
    }

    /// A read of `bytes` from `file` (whose total size is `file_size`):
    /// returns how many bytes must come from disk. The read bytes are
    /// (re-)inserted, refreshing recency.
    pub fn read(&self, file: u64, bytes: u64, file_size: u64) -> u64 {
        let frac = {
            let mut i = self.inner.borrow_mut();
            i.tick += 1;
            let tick = i.tick;
            match i.files.get_mut(&file) {
                Some((cached, t)) => {
                    *t = tick;
                    if file_size == 0 {
                        1.0
                    } else {
                        (*cached as f64 / file_size as f64).min(1.0)
                    }
                }
                None => 0.0,
            }
        };
        let hit = (bytes as f64 * frac) as u64;
        let miss = bytes - hit;
        {
            let mut i = self.inner.borrow_mut();
            i.hits += hit;
            i.misses += miss;
        }
        if miss > 0 {
            self.insert(file, miss, file_size);
        }
        miss
    }

    /// Drops a file's pages (file deleted).
    pub fn forget(&self, file: u64) {
        let mut i = self.inner.borrow_mut();
        if let Some((b, _)) = i.files.remove(&file) {
            i.used -= b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_misses_then_hits() {
        let c = PageCache::new(1_000);
        let miss = c.read(1, 100, 100);
        assert_eq!(miss, 100);
        let miss2 = c.read(1, 100, 100);
        assert_eq!(miss2, 0);
    }

    #[test]
    fn write_populates_cache() {
        let c = PageCache::new(1_000);
        c.insert(7, 500, 500);
        assert_eq!(c.read(7, 500, 500), 0);
    }

    #[test]
    fn partial_residency_gives_partial_hits() {
        let c = PageCache::new(1_000);
        c.insert(3, 250, 1_000); // quarter of the file cached
        let miss = c.read(3, 400, 1_000);
        assert_eq!(miss, 300); // 25% hit
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let c = PageCache::new(300);
        c.insert(1, 200, 200);
        c.insert(2, 200, 200); // evicts 1
        assert_eq!(c.used(), 200);
        assert_eq!(c.read(1, 200, 200), 200, "file 1 must be cold");
        // Reading 1 re-filled it, evicting 2.
        assert_eq!(c.read(2, 200, 200), 200, "file 2 must be cold now");
    }

    #[test]
    fn zero_budget_disables_caching() {
        let c = PageCache::new(0);
        c.insert(1, 100, 100);
        assert_eq!(c.read(1, 100, 100), 100);
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn oversized_file_clamps_to_budget() {
        let c = PageCache::new(100);
        c.insert(1, 500, 500);
        assert!(c.used() <= 100);
    }

    #[test]
    fn forget_releases_space() {
        let c = PageCache::new(1_000);
        c.insert(1, 400, 400);
        c.forget(1);
        assert_eq!(c.used(), 0);
        assert_eq!(c.read(1, 100, 400), 100);
    }
}
