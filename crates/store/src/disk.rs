//! Single-device storage models (HDD spindles and SSDs).
//!
//! The paper's experiments hinge on the interplay between I/O bandwidth and
//! communication (§IV: single vs dual HDD, SSD). The model here captures
//! the two behaviours that matter:
//!
//! * **Sequential streaming is cheap, switching streams is not** (HDD).
//!   Each device remembers which stream it served last; a request from a
//!   different stream pays the access latency (seek + rotational delay),
//!   while back-to-back requests from the same stream do not. Interleaved
//!   readers therefore thrash an HDD — exactly why Hadoop-A's per-packet
//!   disk fetches hurt and why the paper's PrefetchCache wins.
//! * **Queue depth** — an HDD serves one request at a time (convoys form);
//!   an SSD serves many in parallel, sharing its internal bandwidth.
//!
//! Requests larger than [`DiskParams::max_request`] are split so that one
//! huge read cannot monopolise a spindle un-preemptively (the OS would
//! interleave at block-layer granularity).

use std::cell::RefCell;
use std::rc::Rc;

use rmr_des::prelude::*;

/// Device timing parameters.
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Reported in metrics and errors.
    pub name: &'static str,
    /// Sequential bandwidth, bytes/second (single value; the asymmetry
    /// between read and write is second-order for these workloads).
    pub seq_bw: f64,
    /// Cost of starting a non-sequential access (seek + rotational latency
    /// for HDD; flash translation and command overhead for SSD).
    pub access_latency: SimDuration,
    /// How many requests the device services concurrently.
    pub queue_depth: u64,
    /// Largest slice served as one un-preemptible request.
    pub max_request: u64,
}

impl DiskParams {
    /// A 7200 rpm SATA HDD of the paper's era (160 GB system disks / 1 TB
    /// storage-node disks): ~8 ms average access, ~100 MB/s sequential.
    pub fn hdd_7200() -> Self {
        DiskParams {
            name: "HDD",
            seq_bw: 100.0e6,
            access_latency: SimDuration::from_micros(8_000),
            queue_depth: 1,
            max_request: 4 << 20,
        }
    }

    /// A SATA SSD of the era: ~64 µs access, ~400 MB/s, internal
    /// parallelism.
    pub fn ssd_sata() -> Self {
        DiskParams {
            name: "SSD",
            seq_bw: 400.0e6,
            access_latency: SimDuration::from_micros(64),
            queue_depth: 16,
            max_request: 4 << 20,
        }
    }
}

/// Identifies an I/O stream for sequentiality tracking. Allocate via
/// [`Disk::new_stream`] (or through the filesystem layer, which does it per
/// open file handle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamId(u64);

struct DiskInner {
    last_stream: Option<StreamId>,
    next_stream: u64,
}

/// One storage device.
#[derive(Clone)]
pub struct Disk {
    sim: Sim,
    params: Rc<DiskParams>,
    slots: Semaphore,
    bw: Fluid,
    inner: Rc<RefCell<DiskInner>>,
    /// Cached `disk.seeks` handle: stream switches are per-request, so the
    /// counter bump must not pay a registry lookup.
    c_seeks: rmr_des::Counter,
}

impl Disk {
    /// Creates a device; `tag` names it in metrics (`disk.<tag>.…`).
    pub fn new(sim: &Sim, params: DiskParams, tag: &str) -> Self {
        let bw = Fluid::new(sim, params.seq_bw).with_metrics_key(format!("disk.{tag}"));
        Disk {
            sim: sim.clone(),
            slots: Semaphore::new(params.queue_depth),
            bw,
            params: Rc::new(params),
            inner: Rc::new(RefCell::new(DiskInner {
                last_stream: None,
                next_stream: 0,
            })),
            c_seeks: sim.metrics().counter("disk.seeks"),
        }
    }

    /// The device's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Allocates a fresh stream identity.
    pub fn new_stream(&self) -> StreamId {
        let mut inner = self.inner.borrow_mut();
        let id = StreamId(inner.next_stream);
        inner.next_stream += 1;
        id
    }

    /// Total bytes moved so far.
    pub fn bytes_served(&self) -> f64 {
        self.bw.served()
    }

    /// Seconds the device spent transferring.
    pub fn busy_seconds(&self) -> f64 {
        self.bw.busy_seconds()
    }

    /// Performs one I/O of `bytes` on behalf of `stream`. Reads and writes
    /// share the same cost model.
    pub async fn io(&self, stream: StreamId, bytes: u64) {
        let mut left = bytes;
        loop {
            let slice = left.min(self.params.max_request);
            let _slot = self.slots.acquire(1).await;
            let switched = {
                let mut inner = self.inner.borrow_mut();
                let switched = inner.last_stream != Some(stream);
                inner.last_stream = Some(stream);
                switched
            };
            if switched {
                self.sim.sleep(self.params.access_latency).await;
                self.c_seeks.incr();
            }
            if slice > 0 {
                self.bw.consume(slice as f64).await;
            }
            drop(_slot);
            left -= slice;
            if left == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmr_des::SimTime;
    use std::cell::Cell;

    fn test_params(bw: f64, seek_ms: u64) -> DiskParams {
        DiskParams {
            name: "test",
            seq_bw: bw,
            access_latency: SimDuration::from_millis(seek_ms),
            queue_depth: 1,
            max_request: 1 << 20,
        }
    }

    #[test]
    fn sequential_stream_pays_one_seek() {
        let sim = Sim::new(1);
        let disk = Disk::new(&sim, test_params(100.0, 1000), "t");
        let s = disk.new_stream();
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        let sim2 = sim.clone();
        let disk2 = disk.clone();
        sim.spawn(async move {
            for _ in 0..3 {
                disk2.io(s, 100).await; // 1 s of transfer each
            }
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        // One 1 s seek + 3 s streaming.
        assert_eq!(done.get().as_nanos(), 4_000_000_000);
    }

    #[test]
    fn interleaved_streams_thrash() {
        let sim = Sim::new(1);
        let disk = Disk::new(&sim, test_params(1e12, 1000), "t");
        let a = disk.new_stream();
        let b = disk.new_stream();
        let done = Rc::new(Cell::new(SimTime::ZERO));
        let d = Rc::clone(&done);
        let sim2 = sim.clone();
        let disk2 = disk.clone();
        sim.spawn(async move {
            for _ in 0..3 {
                disk2.io(a, 10).await;
                disk2.io(b, 10).await;
            }
            d.set(sim2.now());
        })
        .detach();
        sim.run();
        // Every request switches streams: 6 seeks of 1 s each.
        assert!(done.get().as_nanos() >= 6_000_000_000);
    }

    #[test]
    fn hdd_serves_one_request_at_a_time() {
        let sim = Sim::new(1);
        let disk = Disk::new(&sim, test_params(100.0, 0), "t");
        let finishes = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let disk = disk.clone();
            let s = disk.new_stream();
            let sim2 = sim.clone();
            let f = Rc::clone(&finishes);
            sim.spawn(async move {
                disk.io(s, 100).await; // 1 s transfer
                f.borrow_mut().push(sim2.now().as_nanos());
            })
            .detach();
        }
        sim.run();
        // Convoy: 1 s then 2 s, not both at 2 s (no fluid sharing at qd=1).
        assert_eq!(*finishes.borrow(), vec![1_000_000_000, 2_000_000_000]);
    }

    #[test]
    fn ssd_shares_bandwidth_across_queue() {
        let sim = Sim::new(1);
        let mut p = test_params(100.0, 0);
        p.queue_depth = 8;
        let disk = Disk::new(&sim, p, "t");
        let finishes = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let disk = disk.clone();
            let s = disk.new_stream();
            let sim2 = sim.clone();
            let f = Rc::clone(&finishes);
            sim.spawn(async move {
                disk.io(s, 100).await;
                f.borrow_mut().push(sim2.now().as_nanos());
            })
            .detach();
        }
        sim.run();
        // Parallel service, shared bandwidth: both complete at 2 s.
        assert_eq!(*finishes.borrow(), vec![2_000_000_000, 2_000_000_000]);
    }

    #[test]
    fn large_request_is_preemptible() {
        // A 10 MB read must not block a 1 B read for its whole duration:
        // max_request bounds the un-preemptible slice.
        let sim = Sim::new(1);
        let mut p = test_params(1e6, 0); // 1 MB/s
        p.max_request = 1 << 20;
        let disk = Disk::new(&sim, p, "t");
        let small_done = Rc::new(Cell::new(0u64));
        {
            let disk = disk.clone();
            let s = disk.new_stream();
            sim.spawn(async move {
                disk.io(s, 10 << 20).await; // 10 s total
            })
            .detach();
        }
        {
            let disk = disk.clone();
            let s = disk.new_stream();
            let sim2 = sim.clone();
            let sd = Rc::clone(&small_done);
            sim.spawn(async move {
                sim2.sleep(SimDuration::from_millis(100)).await;
                disk.io(s, 1).await;
                sd.set(sim2.now().as_nanos());
            })
            .detach();
        }
        sim.run();
        // The small read slips in after the current 1 MB slice (~1 s), far
        // before the 10 s bulk read finishes.
        assert!(small_done.get() < 3_000_000_000, "got {}", small_done.get());
    }

    #[test]
    fn accounting_tracks_bytes_and_busy_time() {
        let sim = Sim::new(1);
        let disk = Disk::new(&sim, test_params(100.0, 0), "t");
        let d2 = disk.clone();
        let s = disk.new_stream();
        sim.spawn(async move {
            d2.io(s, 250).await;
        })
        .detach();
        sim.run();
        assert!((disk.bytes_served() - 250.0).abs() < 1e-6);
        assert!((disk.busy_seconds() - 2.5).abs() < 1e-6);
    }
}
