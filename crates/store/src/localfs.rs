//! A node-local filesystem over a JBOD set of simulated disks.
//!
//! TaskTrackers keep map outputs, spills, and reduce-side merge runs on the
//! local filesystem (`mapred.local.dir`); DataNodes keep HDFS block files on
//! it. The model tracks names, sizes, and disk placement — content lives in
//! the data plane above — and charges every access to the owning disk
//! through the page cache.
//!
//! Files are striped across disks at *file* granularity, round-robin, which
//! is what configuring one `mapred.local.dir`/`dfs.data.dir` entry per disk
//! does in real Hadoop (the paper's multi-HDD experiments, Fig 4).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rmr_des::prelude::*;
use rmr_des::resource::Fluid;

use crate::disk::{Disk, DiskParams, StreamId};
use crate::pagecache::PageCache;

/// CPU cost of the software I/O path (syscall + kernel/JVM buffer copies),
/// charged per byte moved through the filesystem. Paid even on page-cache
/// hits — the data still crosses the user/kernel boundary. An in-heap cache
/// (the paper's PrefetchCache) is what avoids this cost.
pub const IO_CPU_PER_BYTE: f64 = 12.0e-9;
/// CPU cost per I/O call (syscall, stream setup).
pub const IO_CPU_PER_OP: f64 = 25.0e-6;

#[derive(Debug, Clone, Copy)]
struct FileMeta {
    id: u64,
    size: u64,
    disk: usize,
}

struct FsInner {
    files: BTreeMap<String, FileMeta>,
    next_id: u64,
    next_disk: usize,
}

/// A node-local filesystem.
#[derive(Clone)]
pub struct LocalFs {
    disks: Rc<Vec<Disk>>,
    cache: PageCache,
    inner: Rc<RefCell<FsInner>>,
    /// Host CPU charged for the software I/O path (None in unit tests that
    /// isolate device behaviour).
    cpu: Option<Fluid>,
    /// Cached counter handles for the per-I/O metrics (`fs.bytes_written`,
    /// `fs.bytes_read`, `fs.bytes_read_disk`): a `Cell` bump per access
    /// instead of a registry lookup.
    c_written: rmr_des::Counter,
    c_read: rmr_des::Counter,
    c_read_disk: rmr_des::Counter,
}

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound(String),
    /// Path already exists (on exclusive create).
    Exists(String),
    /// Read past end of file.
    ShortRead { path: String, want: u64, have: u64 },
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "file not found: {p}"),
            FsError::Exists(p) => write!(f, "file exists: {p}"),
            FsError::ShortRead { path, want, have } => {
                write!(f, "short read on {path}: want {want} bytes, have {have}")
            }
        }
    }
}

impl std::error::Error for FsError {}

impl LocalFs {
    /// Creates a filesystem over `n_disks` devices of the given parameters,
    /// with a page cache of `cache_budget` bytes shared across them.
    /// `tag` prefixes the per-disk metric keys.
    pub fn new(
        sim: &Sim,
        params: DiskParams,
        n_disks: usize,
        cache_budget: u64,
        tag: &str,
    ) -> Self {
        assert!(n_disks > 0, "need at least one disk");
        let disks = (0..n_disks)
            .map(|i| Disk::new(sim, params.clone(), &format!("{tag}.d{i}")))
            .collect();
        LocalFs {
            disks: Rc::new(disks),
            cache: PageCache::new(cache_budget),
            inner: Rc::new(RefCell::new(FsInner {
                files: BTreeMap::new(),
                next_id: 0,
                next_disk: 0,
            })),
            cpu: None,
            c_written: sim.metrics().counter("fs.bytes_written"),
            c_read: sim.metrics().counter("fs.bytes_read"),
            c_read_disk: sim.metrics().counter("fs.bytes_read_disk"),
        }
    }

    /// Attaches the host CPU: every read/write then charges the software
    /// I/O path ([`IO_CPU_PER_BYTE`], [`IO_CPU_PER_OP`]).
    pub fn with_cpu(mut self, cpu: Fluid) -> Self {
        self.cpu = Some(cpu);
        self
    }

    async fn charge_io_cpu(&self, bytes: u64) {
        if let Some(cpu) = &self.cpu {
            cpu.consume(IO_CPU_PER_OP + IO_CPU_PER_BYTE * bytes as f64)
                .await;
        }
    }

    /// Number of devices.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// The underlying page cache (for instrumentation).
    pub fn page_cache(&self) -> &PageCache {
        &self.cache
    }

    /// Sum of all file sizes.
    pub fn used_bytes(&self) -> u64 {
        self.inner.borrow().files.values().map(|m| m.size).sum()
    }

    /// Aggregate seconds any disk spent busy.
    pub fn disks_busy_seconds(&self) -> f64 {
        self.disks.iter().map(|d| d.busy_seconds()).sum()
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.borrow().files.contains_key(path)
    }

    /// Size of `path`.
    pub fn size(&self, path: &str) -> Result<u64, FsError> {
        self.inner
            .borrow()
            .files
            .get(path)
            .map(|m| m.size)
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    /// Creates an empty file, assigning it to the next disk round-robin.
    pub fn create(&self, path: &str) -> Result<(), FsError> {
        let mut inner = self.inner.borrow_mut();
        if inner.files.contains_key(path) {
            return Err(FsError::Exists(path.to_string()));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let disk = inner.next_disk % self.disks.len();
        inner.next_disk += 1;
        inner
            .files
            .insert(path.to_string(), FileMeta { id, size: 0, disk });
        Ok(())
    }

    /// Deletes a file, releasing its pages.
    pub fn delete(&self, path: &str) -> Result<(), FsError> {
        let meta = self
            .inner
            .borrow_mut()
            .files
            .remove(path)
            .ok_or_else(|| FsError::NotFound(path.to_string()))?;
        self.cache.forget(meta.id);
        Ok(())
    }

    fn meta(&self, path: &str) -> Result<FileMeta, FsError> {
        self.inner
            .borrow()
            .files
            .get(path)
            .copied()
            .ok_or_else(|| FsError::NotFound(path.to_string()))
    }

    /// Opens a sequential writer, creating the file if needed.
    pub fn writer(&self, path: &str) -> Result<FileWriter, FsError> {
        if !self.exists(path) {
            self.create(path)?;
        }
        let meta = self.meta(path)?;
        let disk = self.disks[meta.disk].clone();
        let stream = disk.new_stream();
        Ok(FileWriter {
            fs: self.clone(),
            path: path.to_string(),
            disk,
            stream,
        })
    }

    /// Opens a sequential reader positioned at the start.
    pub fn reader(&self, path: &str) -> Result<FileReader, FsError> {
        let meta = self.meta(path)?;
        let disk = self.disks[meta.disk].clone();
        let stream = disk.new_stream();
        Ok(FileReader {
            fs: self.clone(),
            path: path.to_string(),
            disk,
            stream,
            pos: 0,
        })
    }

    /// One-shot whole-file read with a fresh stream (pays its own seek).
    pub async fn read_all(&self, path: &str) -> Result<u64, FsError> {
        let size = self.size(path)?;
        let r = self.reader(path)?;
        r.read_exact_owned(size).await?;
        Ok(size)
    }
}

/// Sequential append handle; one I/O stream on the owning disk.
pub struct FileWriter {
    fs: LocalFs,
    path: String,
    disk: Disk,
    stream: StreamId,
}

impl FileWriter {
    /// Appends `bytes`, charging the disk and populating the page cache.
    pub async fn append(&self, bytes: u64) -> Result<(), FsError> {
        self.fs.charge_io_cpu(bytes).await;
        // Buffered writes hit the page cache and flush to disk; the flush
        // is charged synchronously (steady-state throughput is disk-bound
        // either way, and Hadoop's spill writers block on throttled disks).
        self.disk.io(self.stream, bytes).await;
        let mut inner = self.fs.inner.borrow_mut();
        let meta = inner
            .files
            .get_mut(&self.path)
            .ok_or_else(|| FsError::NotFound(self.path.clone()))?;
        meta.size += bytes;
        let (id, size) = (meta.id, meta.size);
        drop(inner);
        self.fs.cache.insert(id, bytes, size);
        self.fs.c_written.add(bytes as f64);
        Ok(())
    }

    /// The path being written.
    pub fn path(&self) -> &str {
        &self.path
    }
}

/// Sequential read handle; one I/O stream on the owning disk.
pub struct FileReader {
    fs: LocalFs,
    path: String,
    disk: Disk,
    stream: StreamId,
    pos: u64,
}

impl FileReader {
    /// Reads exactly `bytes` from the current position, failing on EOF.
    /// Page-cache hits skip the disk; misses are charged.
    pub async fn read_exact(&mut self, bytes: u64) -> Result<(), FsError> {
        let meta = self.fs.meta(&self.path)?;
        if self.pos + bytes > meta.size {
            return Err(FsError::ShortRead {
                path: self.path.clone(),
                want: bytes,
                have: meta.size - self.pos,
            });
        }
        self.fs.charge_io_cpu(bytes).await;
        let miss = self.fs.cache.read(meta.id, bytes, meta.size);
        if miss > 0 {
            self.disk.io(self.stream, miss).await;
        }
        self.pos += bytes;
        self.fs.c_read.add(bytes as f64);
        self.fs.c_read_disk.add(miss as f64);
        Ok(())
    }

    /// Bytes left until EOF.
    pub fn remaining(&self) -> Result<u64, FsError> {
        Ok(self.fs.size(&self.path)? - self.pos)
    }

    /// `read_exact` consuming self (for one-shot helpers).
    async fn read_exact_owned(mut self, bytes: u64) -> Result<(), FsError> {
        self.read_exact(bytes).await
    }
}

/// Convenience: builds a JBOD `LocalFs` from a disk preset name used in the
/// paper's configurations.
pub fn jbod(sim: &Sim, params: DiskParams, n: usize, cache: u64, tag: &str) -> LocalFs {
    LocalFs::new(sim, params, n, cache, tag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn fast_disk() -> DiskParams {
        DiskParams {
            name: "t",
            seq_bw: 100.0,
            access_latency: SimDuration::ZERO,
            queue_depth: 1,
            max_request: 1 << 20,
        }
    }

    #[test]
    fn write_then_read_round_trips_metadata() {
        let sim = Sim::new(1);
        let fs = LocalFs::new(&sim, fast_disk(), 1, 0, "t");
        let fs2 = fs.clone();
        sim.spawn(async move {
            let w = fs2.writer("spill0").unwrap();
            w.append(300).await.unwrap();
            w.append(200).await.unwrap();
            assert_eq!(fs2.size("spill0").unwrap(), 500);
            let mut r = fs2.reader("spill0").unwrap();
            r.read_exact(500).await.unwrap();
            assert!(r.read_exact(1).await.is_err());
        })
        .detach();
        let end = sim.run();
        // 500 B written + 500 B read at 100 B/s = 10 s (no cache).
        assert_eq!(end.as_nanos(), 10_000_000_000);
    }

    #[test]
    fn page_cache_makes_rereads_free() {
        let sim = Sim::new(1);
        let fs = LocalFs::new(&sim, fast_disk(), 1, 10_000, "t");
        let fs2 = fs.clone();
        sim.spawn(async move {
            let w = fs2.writer("f").unwrap();
            w.append(500).await.unwrap(); // 5 s
            let mut r = fs2.reader("f").unwrap();
            r.read_exact(500).await.unwrap(); // cached → free
        })
        .detach();
        let end = sim.run();
        assert_eq!(end.as_nanos(), 5_000_000_000);
    }

    #[test]
    fn files_round_robin_across_disks() {
        let sim = Sim::new(1);
        let fs = LocalFs::new(&sim, fast_disk(), 2, 0, "t");
        let done = Rc::new(Cell::new(0u64));
        let d = Rc::clone(&done);
        let fs2 = fs.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            let wa = fs2.writer("a").unwrap();
            let wb = fs2.writer("b").unwrap();
            // Concurrent writes to different files land on different disks
            // and overlap fully.
            let fa = async {
                wa.append(100).await.unwrap();
            };
            let fb = async {
                wb.append(100).await.unwrap();
            };
            rmr_des::sync::join_all(vec![
                Box::pin(fa) as std::pin::Pin<Box<dyn std::future::Future<Output = ()>>>,
                Box::pin(fb),
            ])
            .await;
            d.set(sim2.now().as_nanos());
        })
        .detach();
        sim.run();
        assert_eq!(done.get(), 1_000_000_000); // 1 s, not 2 s
    }

    #[test]
    fn missing_file_errors() {
        let sim = Sim::new(1);
        let fs = LocalFs::new(&sim, fast_disk(), 1, 0, "t");
        assert!(matches!(fs.size("nope"), Err(FsError::NotFound(_))));
        assert!(fs.reader("nope").is_err());
        assert!(fs.delete("nope").is_err());
    }

    #[test]
    fn exclusive_create_rejects_duplicates() {
        let sim = Sim::new(1);
        let fs = LocalFs::new(&sim, fast_disk(), 1, 0, "t");
        fs.create("x").unwrap();
        assert!(matches!(fs.create("x"), Err(FsError::Exists(_))));
    }

    #[test]
    fn delete_forgets_pages() {
        let sim = Sim::new(1);
        let fs = LocalFs::new(&sim, fast_disk(), 1, 10_000, "t");
        let fs2 = fs.clone();
        sim.spawn(async move {
            let w = fs2.writer("f").unwrap();
            w.append(100).await.unwrap();
            fs2.delete("f").unwrap();
            assert_eq!(fs2.page_cache().used(), 0);
            assert!(!fs2.exists("f"));
        })
        .detach();
        sim.run();
    }

    #[test]
    fn used_bytes_sums_files() {
        let sim = Sim::new(1);
        let fs = LocalFs::new(&sim, fast_disk(), 2, 0, "t");
        let fs2 = fs.clone();
        sim.spawn(async move {
            fs2.writer("a").unwrap().append(100).await.unwrap();
            fs2.writer("b").unwrap().append(50).await.unwrap();
            assert_eq!(fs2.used_bytes(), 150);
        })
        .detach();
        sim.run();
    }
}
