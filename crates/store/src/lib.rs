//! # rmr-store — simulated storage for the RDMA-MapReduce reproduction
//!
//! * [`disk`] — device models: HDD spindles (seek-on-stream-switch, single
//!   queue) and SSDs (low latency, internal parallelism). The paper's
//!   1-vs-2-HDD and SSD experiments (Fig 4, 7, 8) exercise these.
//! * [`pagecache`] — an OS page-cache model so the socket baselines are not
//!   unrealistically cold-cached.
//! * [`localfs`] — a node-local filesystem striping files round-robin over a
//!   JBOD disk set; every access charged through the cache to the disks.

pub mod disk;
pub mod localfs;
pub mod pagecache;

pub use disk::{Disk, DiskParams, StreamId};
pub use localfs::{FileReader, FileWriter, FsError, LocalFs};
pub use pagecache::PageCache;
