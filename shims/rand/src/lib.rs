//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the *API subset it actually uses* — `SmallRng`, `SeedableRng`, and the
//! `Rng` extension methods — over a hand-rolled xoshiro256** generator.
//! Determinism is the whole point of this workspace, so the implementation
//! is fully seeded and has no `thread_rng`/`OsRng` entry points at all:
//! code that tries to reach OS entropy simply does not compile, which is a
//! stronger guarantee than the simcheck lint that also polices it.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The next representable value above `self` (for inclusive ranges).
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, far below
                // anything a simulation statistic can observe.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
            fn successor(self) -> Self {
                self.checked_add(1).expect("gen_range inclusive upper bound at type max")
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::draw(rng) * (hi - lo)
    }
    fn successor(self) -> Self {
        self
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value inside the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range on an empty range");
        T::sample_half_open(rng, lo, hi.successor())
    }
}

/// Slices [`Rng::fill`] can populate.
pub trait Fill {
    /// Overwrites `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// The `rand` extension-method surface the workspace uses.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — the same family the real `SmallRng` uses on 64-bit
    /// targets: fast, tiny state, excellent statistical quality, and (here)
    /// constructible *only* from an explicit seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four non-zero words.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut r = SmallRng::seed_from_u64(4);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_overwrites_every_byte() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 37];
        r.fill(&mut buf[..]);
        // 37 zero bytes surviving a random fill is astronomically unlikely.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = SmallRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
    }
}
