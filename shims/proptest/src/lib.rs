//! Offline stand-in for the `proptest` crate.
//!
//! Implements the declarative surface this workspace's property tests use —
//! `proptest! { #[test] fn f(x in strategy) { .. } }`, range/tuple/`vec`/
//! `any` strategies, `prop_map`, `prop_oneof!`, and the `prop_assert*`
//! macros — over a deterministic splitmix64 generator. Case seeds derive
//! from the test name and case index, so every run of every machine
//! exercises the same inputs (no shrinking: a failure report prints the
//! offending case's generated values instead).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Test-case failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps the full offline suite
        // fast while still exercising plenty of schedules.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test name and case index.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies ([`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Integer types range strategies can draw.
pub trait UniformValue: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn draw_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Next representable value (for inclusive ranges).
    fn successor(self) -> Self;
}

macro_rules! impl_uniform_value {
    ($($t:ty),*) => {$(
        impl UniformValue for $t {
            fn draw_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
            fn successor(self) -> Self {
                self.checked_add(1).expect("inclusive range at type max")
            }
        }
    )*};
}
impl_uniform_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: UniformValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw_half_open(rng, *self.start(), self.end().successor())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types [`any`] can generate.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy generating any value of `T` (`any::<T>()`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// An arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec` of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            assert!(span > 0, "vec length range is empty");
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs the body of one `proptest!`-generated test across its cases.
/// `runner` generates inputs and executes the property for one case.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut runner: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    for case in 0..config.cases {
        let mut rng = TestRng::for_case(test_name, case);
        let (inputs, result) = runner(&mut rng);
        if let Err(e) = result {
            panic!(
                "proptest case {case}/{cases} of `{test_name}` failed: {e}\n  inputs: {inputs}",
                cases = config.cases,
            );
        }
    }
}

/// Declares property tests. Mirrors the real crate's surface:
/// an optional `#![proptest_config(expr)]` header, then `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    let __inputs = {
                        let mut s = String::new();
                        $(
                            s.push_str(concat!(stringify!($arg), " = "));
                            s.push_str(&format!("{:?}; ", $arg));
                        )*
                        s
                    };
                    let __result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    (__inputs, __result)
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r,
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn tuples_and_map_compose(
            pairs in crate::collection::vec((0u32..5, 0u32..5).prop_map(|(a, b)| a + b), 1..8),
        ) {
            prop_assert!(pairs.iter().all(|&s| s <= 8));
        }

        #[test]
        fn oneof_hits_every_branch(xs in crate::collection::vec(prop_oneof![
            (0u8..1).prop_map(|_| 1u8),
            (0u8..1).prop_map(|_| 2u8),
        ], 8..32)) {
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn failure_reports_inputs() {
        proptest! {
            @impl (ProptestConfig::with_cases(4));
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
