//! Offline stand-in for the `criterion` crate.
//!
//! Implements the small API surface the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, `benchmark_group`, `Throughput`,
//! `BatchSize`, and `Bencher::{iter, iter_batched}` — as a plain wall-clock
//! loop that prints mean ns/iteration (plus derived throughput) per
//! benchmark. No statistics, plots, or saved baselines: just enough to keep
//! `cargo bench` runnable and comparable release-to-release without network
//! access to crates.io.

use std::fmt::Write as _;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

/// Measurement marker types (only wall-clock here).
pub mod measurement {
    /// Wall-clock time measurement.
    pub struct WallTime;
}

/// Declared work-per-iteration, used to derive a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Hint for how batched setup output should be buffered (ignored here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            throughput: None,
            _criterion: PhantomData,
        }
    }
}

/// A named group of benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a, M> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: PhantomData<(&'a mut Criterion, M)>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget (the shim always warms up with one iteration).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the target number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares work-per-iteration for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark and prints its mean time.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            budget: self.measurement_time,
            max_iters: self.sample_size as u64,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iters > 0 {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        } else {
            f64::NAN
        };
        let mut line = format!(
            "bench {}/{}: {:.0} ns/iter ({} iters)",
            self.name, id, mean_ns, b.iters
        );
        match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let _ = write!(line, ", {:.1} Melem/s", n as f64 / mean_ns * 1e3);
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let _ = write!(
                    line,
                    ", {:.1} MiB/s",
                    n as f64 / mean_ns * 1e9 / (1 << 20) as f64
                );
            }
            _ => {}
        }
        println!("{line}");
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Runs and times the closure a benchmark hands it.
pub struct Bencher {
    budget: Duration,
    max_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over up to `sample_size` iterations or the time budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f()); // warm-up, untimed
        let start = Instant::now();
        while self.iters < self.max_iters && start.elapsed() < self.budget {
            let t = Instant::now();
            std::hint::black_box(f());
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }

    /// Like [`Bencher::iter`], with untimed per-iteration setup.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(f(setup())); // warm-up, untimed
        let start = Instant::now();
        while self.iters < self.max_iters && start.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(f(input));
            self.elapsed += t.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a function running the given benchmarks against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5)
            .measurement_time(Duration::from_millis(200));
        let mut ran = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        // warm-up + up to 5 measured iterations
        assert!((2..=6).contains(&ran), "ran {ran}");
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Bytes(1024));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
