//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the workspace uses: [`Bytes`] (cheaply cloneable,
//! immutable, sliceable), [`BytesMut`] (growable builder), and the [`Buf`] /
//! [`BufMut`] cursor traits. `Bytes` keeps an `Arc<[u8]>` plus a window, so
//! `clone` and `split_to` are O(1) and never copy payload — the same
//! performance contract the real crate gives the shuffle data plane.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte string (window into a shared buffer).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty byte string.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice without copying semantics concerns.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(bytes);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Length of the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-window `[at.start, at.end)` relative to this window.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `at` bytes, leaving the rest (O(1)).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copies the window out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read-cursor operations (implemented by [`Bytes`]).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes and returns a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consumes and returns a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32(&mut self) -> u32 {
        let head = self.split_to(4);
        u32::from_be_bytes(head.as_ref().try_into().unwrap())
    }

    fn get_u64(&mut self) -> u64 {
        let head = self.split_to(8);
        u64::from_be_bytes(head.as_ref().try_into().unwrap())
    }
}

/// Write-cursor operations (implemented by [`BytesMut`]).
pub trait BufMut {
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_bufmut() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(7);
        b.put_slice(b"abc");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 7);
        assert_eq!(frozen.get_u32(), 7);
        assert_eq!(frozen.as_ref(), b"abc");
    }

    #[test]
    fn split_to_is_a_window() {
        let mut b = Bytes::from(b"hello world".to_vec());
        let head = b.split_to(5);
        assert_eq!(head.as_ref(), b"hello");
        assert_eq!(b.as_ref(), b" world");
        assert_eq!(head.slice(1..3).as_ref(), b"el");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from_static(b"abd");
        assert!(a < b);
        assert_eq!(a, Bytes::from(b"abc".to_vec()));
    }

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }
}
