//! Task-failure recovery — the paper's stated future work, implemented:
//! a map attempt is killed mid-flight, the JobTracker re-schedules it, and
//! the job still commits a correct, globally sorted output.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use rdma_mapred::prelude::*;

fn main() {
    for fail in [None, Some(3usize)] {
        let sim = Sim::new(99);
        let cluster = Cluster::build(
            &sim,
            FabricParams::ib_verbs_qdr(),
            &vec![NodeSpec::westmere_compute(); 3],
            HdfsConfig {
                block_size: 4 << 20,
                replication: 1,
                packet_size: 1 << 20,
            },
        );
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        let c = cluster.clone();
        sim.spawn(async move {
            let records = teragen(&c, "/in", 24 << 20, true).await;
            let mut conf = JobConf::osu_ib();
            conf.num_reduces = 3;
            let plan = match fail {
                Some(idx) => FaultPlan::fail_map_once(0, idx),
                None => FaultPlan::none(),
            };
            let res = run_job_with_faults(&c, conf, terasort_spec("/in", "/out"), &plan).await;
            let report = teravalidate(&c, "/out", 3, records)
                .await
                .expect("output still globally sorted after the failure");
            *d.borrow_mut() = Some((res, report.records));
        })
        .detach();
        sim.run();
        let (res, records) = done.borrow_mut().take().expect("job hung");
        match fail {
            None => println!(
                "baseline   : {:>6.1}s, {} records validated, {} failed attempts",
                res.duration_s, records, res.failed_map_attempts
            ),
            Some(idx) => println!(
                "map {idx} killed: {:>6.1}s, {} records validated, {} failed attempts (re-executed)",
                res.duration_s, records, res.failed_map_attempts
            ),
        }
    }
    println!("\nThe killed attempt costs wall-clock time but never correctness.");
}
