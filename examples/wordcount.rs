//! WordCount on the public API: a non-identity map function (line → words)
//! and a grouping reduce function (word → count), run through the RDMA
//! shuffle with real data, results read back and checked.
//!
//! ```text
//! cargo run --release --example wordcount
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use rdma_mapred::prelude::*;
use rdma_mapred::workloads::{read_counts, textgen, wordcount_spec};

fn main() {
    let sim = Sim::new(7);
    let cluster = Cluster::build(
        &sim,
        FabricParams::ib_verbs_qdr(),
        &vec![NodeSpec::westmere_compute(); 3],
        HdfsConfig {
            block_size: 2 << 20,
            replication: 1,
            packet_size: 512 << 10,
        },
    );

    let done = Rc::new(RefCell::new(None));
    let d = Rc::clone(&done);
    let c = cluster.clone();
    sim.spawn(async move {
        textgen(&c, "/wc/in", 20_000, 12).await;
        let mut conf = JobConf::osu_ib();
        conf.num_reduces = 4;
        let res = run_job(&c, conf, wordcount_spec("/wc/in", "/wc/out")).await;
        let counts = read_counts(&c, "/wc/out", 4).await.expect("read counts");
        *d.borrow_mut() = Some((res, counts));
    })
    .detach();
    sim.run();

    let (res, counts) = done.borrow_mut().take().expect("job did not finish");
    let total: u64 = counts.values().sum();
    println!("WordCount over 20,000 lines × 12 words:");
    for (word, count) in counts.iter().take(6) {
        println!("  {word:12} {count}");
    }
    println!("  ... {} distinct words, {total} total", counts.len());
    assert_eq!(total, 20_000 * 12, "every word accounted for");
    println!(
        "\njob ran in {:.1} virtual seconds on {} ({} maps, {} reduces)",
        res.duration_s,
        res.shuffle.label(),
        res.maps,
        res.reduces
    );
}
