//! Reproduce the paper's headline comparison on your laptop: TeraSort under
//! all four systems (10GigE, IPoIB, Hadoop-A, OSU-IB) on a 4-node cluster,
//! 1 vs 2 disks — a scaled-down Fig 4(a).
//!
//! ```text
//! cargo run --release --example terasort_comparison [size_gb]
//! ```

use rdma_mapred::prelude::*;

fn main() {
    let gb: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0);
    let systems = [
        System::GigE10,
        System::IpoIb,
        System::HadoopA,
        System::OsuIb,
    ];
    let mut experiments = Vec::new();
    for disks in [1usize, 2] {
        for system in systems {
            experiments.push(Experiment::new(
                "demo",
                Bench::TeraSort,
                system,
                Testbed::compute(4, disks),
                gb,
                2013,
            ));
        }
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let records = run_all(&experiments, threads);

    println!("\nTeraSort {gb} GB on 4 nodes (virtual seconds):");
    println!("{:>28} {:>10} {:>10}", "system", "1 disk", "2 disks");
    for system in systems {
        let t = |d: usize| {
            records
                .iter()
                .find(|r| r.system == system.label() && r.disks == d)
                .map(|r| r.duration_s)
                .unwrap_or(f64::NAN)
        };
        println!("{:>28} {:>9.0}s {:>9.0}s", system.label(), t(1), t(2));
    }
    let osu = records
        .iter()
        .find(|r| r.system == System::OsuIb.label() && r.disks == 1)
        .unwrap();
    let ipoib = records
        .iter()
        .find(|r| r.system == System::IpoIb.label() && r.disks == 1)
        .unwrap();
    println!(
        "\nOSU-IB improves on IPoIB by {:.0}% (1 disk), as in the paper's Fig 4(a) trend.",
        (ipoib.duration_s - osu.duration_s) / ipoib.duration_s * 100.0
    );
}
