//! Quickstart: sort real data with the paper's RDMA shuffle engine and
//! validate the output, end to end, in a few dozen lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use rdma_mapred::prelude::*;

fn main() {
    // A deterministic simulation: same seed ⇒ identical run, always.
    let sim = Sim::new(2013);

    // Four Westmere-class workers (8 cores, 12 GB RAM, 1 HDD) on a QDR
    // InfiniBand fabric, with small HDFS blocks so the demo spawns a few
    // dozen map tasks.
    let cluster = Cluster::build(
        &sim,
        FabricParams::ib_verbs_qdr(),
        &vec![NodeSpec::westmere_compute(); 4],
        HdfsConfig {
            block_size: 8 << 20,
            replication: 2,
            packet_size: 1 << 20,
        },
    );

    let result: Rc<RefCell<Option<JobResult>>> = Rc::new(RefCell::new(None));
    let out = Rc::clone(&result);
    let c = cluster.clone();
    sim.spawn(async move {
        // TeraGen: 64 MB of real 100-byte records (10 B key + 90 B value).
        let records = teragen(&c, "/tera/in", 64 << 20, true).await;
        println!("generated {records} records");

        // The paper's engine: RDMA shuffle + PrefetchCache + overlap.
        let mut conf = JobConf::osu_ib();
        conf.num_reduces = 8;
        let res = run_job(&c, conf, terasort_spec("/tera/in", "/tera/out")).await;

        // TeraValidate: global order and record conservation.
        let report = teravalidate(&c, "/tera/out", 8, records)
            .await
            .expect("output must be globally sorted");
        println!(
            "validated {} records across {} partitions",
            report.records, report.partitions
        );
        *out.borrow_mut() = Some(res);
    })
    .detach();
    sim.run();

    let res = result.borrow_mut().take().expect("job did not finish");
    println!();
    println!("job            {}", res.name);
    println!("engine         {}", res.shuffle.label());
    println!("maps/reduces   {}/{}", res.maps, res.reduces);
    println!("execution time {:.1} s (virtual)", res.duration_s);
    println!(
        "map phase      {:.1} s, full overlap tail {:.1} s",
        res.map_phase_end_s - res.start_s,
        res.end_s - res.map_phase_end_s
    );
    println!(
        "shuffled       {:.1} MB, cache hit rate {:.0}%",
        res.shuffled_bytes as f64 / 1e6,
        100.0 * res.cache_hits as f64 / (res.cache_hits + res.cache_misses).max(1) as f64
    );
}
