//! The paper's tuning story in miniature (§III-C-3, §IV-D): toggle the
//! PrefetchCache and sweep the RDMA packet size on a fixed workload.
//!
//! ```text
//! cargo run --release --example shuffle_tuning
//! ```

use rdma_mapred::prelude::*;

fn main() {
    // --- mapred.local.caching.enabled: on vs off (Fig 8 in miniature). ---
    let mut caching = Vec::new();
    for system in [System::IpoIb, System::OsuIbNoCache, System::OsuIb] {
        caching.push(Experiment::new(
            "caching",
            Bench::Sort,
            system,
            Testbed::ssd(4),
            8.0,
            2013,
        ));
    }
    let records = run_all(&caching, 2);
    println!("Sort 8 GB on SSD, 4 nodes:");
    for r in &records {
        println!(
            "  {:28} {:>7.0}s   cache hit rate {:>3.0}%",
            r.system,
            r.duration_s,
            r.cache_hit_rate * 100.0
        );
    }
    let off = &records[1];
    let on = &records[2];
    println!(
        "  caching enabled improves the same engine by {:.1}% (paper §IV-D: 18.39% at 20GB)\n",
        (off.duration_s - on.duration_s) / off.duration_s * 100.0
    );

    // --- RDMA packet size sweep (the knob Hadoop-A doesn't expose). ---
    println!("OSU-IB shuffle packet-size sweep, TeraSort 8 GB, 4 nodes, 1 HDD:");
    for packet_kb in [64u64, 256, 512, 1024] {
        let mut e = Experiment::new(
            "packet",
            Bench::TeraSort,
            System::OsuIb,
            Testbed::compute(4, 1),
            8.0,
            2013,
        );
        e.osu_packet_override = Some(packet_kb << 10);
        let r = run_experiment(&e);
        println!("  packet {packet_kb:>5} KB → {:>6.0}s", r.duration_s);
    }
}
