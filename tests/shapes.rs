//! Regression tests locking in the paper's evaluation *shapes*: who wins,
//! and where the crossovers fall. These run the synthetic data plane at
//! moderate scale; exact seconds are free to drift, orderings are not.

use rmr_cluster::{run_experiment, Bench, Experiment, System, Testbed};

fn run(bench: Bench, system: System, tb: Testbed, gb: f64) -> f64 {
    run_experiment(&Experiment::new("shape", bench, system, tb, gb, 42)).duration_s
}

#[test]
fn terasort_osu_beats_every_baseline() {
    // Fig 4(a) @ 30 GB, 4 nodes, 1 HDD: OSU < Hadoop-A < IPoIB ≤ 10GigE.
    let osu = run(Bench::TeraSort, System::OsuIb, Testbed::compute(4, 1), 30.0);
    let ha = run(
        Bench::TeraSort,
        System::HadoopA,
        Testbed::compute(4, 1),
        30.0,
    );
    let ipoib = run(Bench::TeraSort, System::IpoIb, Testbed::compute(4, 1), 30.0);
    let g10 = run(
        Bench::TeraSort,
        System::GigE10,
        Testbed::compute(4, 1),
        30.0,
    );
    assert!(osu < ha, "OSU {osu} !< Hadoop-A {ha}");
    assert!(ha < ipoib, "Hadoop-A {ha} !< IPoIB {ipoib}");
    // IPoIB and 10GigE trade places within ~15% in the model (the paper has
    // them within ~9%); only gross inversions fail.
    assert!(ipoib <= g10 * 1.15, "IPoIB {ipoib} !<= 10GigE {g10} * 1.15");
    // §IV-B: vs IPoIB ≈ 35%; accept a generous band.
    let imp = (ipoib - osu) / ipoib * 100.0;
    assert!(
        (20.0..=50.0).contains(&imp),
        "OSU vs IPoIB improvement {imp}%"
    );
}

#[test]
fn terasort_multiple_disks_help_everyone_and_osu_most_vs_ha() {
    let tb1 = Testbed::compute(4, 1);
    let tb2 = Testbed::compute(4, 2);
    let osu1 = run(Bench::TeraSort, System::OsuIb, tb1.clone(), 30.0);
    let osu2 = run(Bench::TeraSort, System::OsuIb, tb2.clone(), 30.0);
    let ha1 = run(Bench::TeraSort, System::HadoopA, tb1, 30.0);
    let ha2 = run(Bench::TeraSort, System::HadoopA, tb2, 30.0);
    assert!(osu2 < osu1, "2 disks must speed OSU up");
    assert!(ha2 < ha1, "2 disks must speed Hadoop-A up");
    let gain1 = (ha1 - osu1) / ha1;
    let gain2 = (ha2 - osu2) / ha2;
    // §IV-B: 9% (1 disk) grows to 13% (2 disks) at 30 GB; require the trend
    // to hold approximately (within 3 points of monotone).
    assert!(
        gain2 > gain1 - 0.03,
        "OSU's margin over Hadoop-A should not shrink with more disks: {gain1} → {gain2}"
    );
}

#[test]
fn sort_hadoop_a_loses_to_ipoib_at_scale() {
    // §IV-C: the fixed kv-count packets make Hadoop-A *worse* than IPoIB on
    // the Sort benchmark (large variable kv pairs).
    let ha = run(Bench::Sort, System::HadoopA, Testbed::compute(4, 1), 20.0);
    let ipoib = run(Bench::Sort, System::IpoIb, Testbed::compute(4, 1), 20.0);
    let osu = run(Bench::Sort, System::OsuIb, Testbed::compute(4, 1), 20.0);
    assert!(
        ha > ipoib,
        "Hadoop-A {ha} must lose to IPoIB {ipoib} on Sort"
    );
    assert!(osu < ipoib, "OSU {osu} must beat IPoIB {ipoib} on Sort");
    assert!(osu < ha, "OSU {osu} must beat Hadoop-A {ha} on Sort");
}

#[test]
fn caching_helps_on_terasort() {
    // Fig 8's mechanism: same engine, caching on vs off. The effect is
    // clearest where serving competes with other disk traffic.
    let on = run(Bench::TeraSort, System::OsuIb, Testbed::compute(4, 1), 20.0);
    let off = run(
        Bench::TeraSort,
        System::OsuIbNoCache,
        Testbed::compute(4, 1),
        20.0,
    );
    assert!(
        on <= off,
        "caching enabled ({on}) must not be slower than disabled ({off})"
    );
}

#[test]
fn job_time_grows_with_data_size() {
    let mut prev = 0.0;
    for gb in [10.0, 20.0, 30.0] {
        let t = run(Bench::TeraSort, System::OsuIb, Testbed::compute(4, 1), gb);
        assert!(
            t > prev,
            "{gb} GB ({t}s) must take longer than smaller runs"
        );
        prev = t;
    }
}

#[test]
fn more_nodes_make_the_same_job_faster() {
    let t4 = run(Bench::TeraSort, System::OsuIb, Testbed::compute(4, 1), 20.0);
    let t8 = run(Bench::TeraSort, System::OsuIb, Testbed::compute(8, 1), 20.0);
    assert!(t8 < t4, "8 nodes ({t8}s) must beat 4 nodes ({t4}s)");
}

#[test]
fn ssd_beats_hdd() {
    let hdd = run(Bench::Sort, System::OsuIb, Testbed::compute(4, 1), 10.0);
    let ssd = run(Bench::Sort, System::OsuIb, Testbed::ssd(4), 10.0);
    assert!(ssd < hdd, "SSD ({ssd}s) must beat HDD ({hdd}s)");
}
