//! Shuffle-volume engine gates: the in-node combiner and striped multi-rail
//! engines behind the `ShuffleEngine` seam.
//!
//! * Correctness: WordCount counts are identical on Vanilla and NodeCombiner
//!   (aggregation must be invisible in the output), and the combiner engine
//!   cuts shuffled bytes against plain OSU-IB.
//! * Fallback: a combiner-less job (TeraSort) on NodeCombiner replays the
//!   OSU-IB data plane exactly — same duration, same shuffle volume.
//! * Replay: both new engines pass the double-run trace-hash gate.

use std::cell::RefCell;
use std::rc::Rc;

use rmr_core::cluster::{Cluster, NodeSpec};
use rmr_core::{run_job, JobConf, ShuffleKind};
use rmr_des::{assert_deterministic, Sim};
use rmr_hdfs::HdfsConfig;
use rmr_net::FabricParams;
use rmr_workloads::{
    read_counts, teragen, terasort_spec, teravalidate, textgen_blocks, wordcount_spec,
};

fn cluster(sim: &Sim, workers: usize, fabric: FabricParams, block: u64) -> Cluster {
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 256 << 20;
    Cluster::build(
        sim,
        fabric,
        &vec![spec; workers],
        HdfsConfig {
            block_size: block,
            replication: 1,
            packet_size: 256 << 10,
        },
    )
}

fn fabric_for(kind: ShuffleKind) -> FabricParams {
    // Fabric choice, not engine dispatch: sockets ride IPoIB, verbs engines
    // ride the QDR HCA, and the striped engine gets a second rail.
    if kind == ShuffleKind::Vanilla {
        FabricParams::ipoib_qdr()
    } else if kind == ShuffleKind::MultiRail {
        FabricParams::ib_verbs_qdr().with_rails(2)
    } else {
        FabricParams::ib_verbs_qdr()
    }
}

fn conf_for(kind: ShuffleKind, reduces: usize) -> JobConf {
    let mut conf = JobConf::for_kind(kind);
    conf.num_reduces = reduces;
    conf.map_slots = 2;
    conf.reduce_slots = 2;
    conf.shuffle_buffer = 16 << 20;
    conf.io_sort_buffer = 8 << 20;
    conf.prefetch_cache_bytes = 32 << 20;
    conf
}

/// Runs one WordCount on `kind` and returns (counts, shuffled bytes).
fn wordcount_on(kind: ShuffleKind) -> (std::collections::BTreeMap<String, u64>, u64) {
    let sim = Sim::new(61);
    // Small blocks so the input spans several maps per node — the in-node
    // stage only folds when co-located maps share a wave.
    let c = cluster(&sim, 3, fabric_for(kind), 256 << 10);
    let conf = conf_for(kind, 2);
    let done = Rc::new(RefCell::new(None));
    let d = Rc::clone(&done);
    let c2 = c.clone();
    sim.spawn_named("wc-driver", async move {
        textgen_blocks(&c2, "/wc/in", 20_000, 10, 2_500).await;
        let res = run_job(&c2, conf, wordcount_spec("/wc/in", "/wc/out")).await;
        let counts = read_counts(&c2, "/wc/out", 2).await.unwrap();
        *d.borrow_mut() = Some((counts, res.shuffled_bytes));
    })
    .detach();
    sim.run();
    let out = done.borrow_mut().take();
    out.unwrap_or_else(|| panic!("{kind:?}: WordCount hung"))
}

#[test]
fn wordcount_counts_identical_on_vanilla_and_node_combiner() {
    let (vanilla, _) = wordcount_on(ShuffleKind::Vanilla);
    let (combined, _) = wordcount_on(ShuffleKind::NodeCombiner);
    let total: u64 = vanilla.values().sum();
    assert_eq!(total, 20_000 * 10, "oracle word total");
    assert_eq!(
        vanilla, combined,
        "per-node aggregation must be invisible in the output"
    );
}

#[test]
fn node_combiner_cuts_shuffle_volume_vs_osu_ib() {
    let (osu_counts, osu_bytes) = wordcount_on(ShuffleKind::OsuIb);
    let (comb_counts, comb_bytes) = wordcount_on(ShuffleKind::NodeCombiner);
    assert_eq!(osu_counts, comb_counts);
    assert!(
        comb_bytes < osu_bytes,
        "in-node aggregation must shrink the shuffle: {comb_bytes} vs {osu_bytes}"
    );
}

/// Runs one TeraSort on `kind` over `fabric` and returns (duration,
/// shuffled bytes).
fn terasort_on_fabric(kind: ShuffleKind, fabric: FabricParams) -> (f64, u64) {
    let sim = Sim::new(62);
    let c = cluster(&sim, 3, fabric, 2 << 20);
    let conf = conf_for(kind, 3);
    let done = Rc::new(RefCell::new(None));
    let d = Rc::clone(&done);
    let c2 = c.clone();
    sim.spawn_named("ts-driver", async move {
        let records = teragen(&c2, "/ts/in", 12 << 20, true).await;
        let res = run_job(&c2, conf, terasort_spec("/ts/in", "/ts/out")).await;
        let rep = teravalidate(&c2, "/ts/out", 3, records).await.unwrap();
        assert!(rep.records > 10_000);
        *d.borrow_mut() = Some((res.duration_s, res.shuffled_bytes));
    })
    .detach();
    sim.run();
    let out = done.borrow_mut().take();
    out.unwrap_or_else(|| panic!("{kind:?}: TeraSort hung"))
}

#[test]
fn combiner_less_jobs_fall_back_to_the_osu_ib_data_plane() {
    // TeraSort has no combiner fn, so NodeCombiner's staging hook is
    // pass-through: the job must replay OSU-IB's timings exactly.
    let (osu_s, osu_bytes) = terasort_on_fabric(ShuffleKind::OsuIb, fabric_for(ShuffleKind::OsuIb));
    let (comb_s, comb_bytes) = terasort_on_fabric(
        ShuffleKind::NodeCombiner,
        fabric_for(ShuffleKind::NodeCombiner),
    );
    assert_eq!(osu_s, comb_s, "pass-through must be bit-identical");
    assert_eq!(osu_bytes, comb_bytes);
}

#[test]
fn multi_rail_beats_single_rail_when_the_wire_binds() {
    // Throttle the link so the shuffle dominates the job: a second rail
    // then has to show up as wall-clock, not noise.
    let mut slow = FabricParams::ib_verbs_qdr();
    slow.link_bw /= 500.0;
    let striped = slow.clone().with_rails(2);
    let (osu_s, osu_bytes) = terasort_on_fabric(ShuffleKind::OsuIb, slow);
    let (mr_s, mr_bytes) = terasort_on_fabric(ShuffleKind::MultiRail, striped);
    assert_eq!(osu_bytes, mr_bytes, "striping moves the same bytes");
    assert!(
        mr_s < osu_s,
        "two rails must beat one on a wire-bound shuffle: {mr_s} vs {osu_s}"
    );
}

#[test]
fn new_engines_replay_identically() {
    for kind in [ShuffleKind::NodeCombiner, ShuffleKind::MultiRail] {
        assert_deterministic(63, move |sim| {
            let c = cluster(sim, 3, fabric_for(kind), 256 << 10);
            let conf = conf_for(kind, 2);
            sim.spawn_named("replay-driver", async move {
                textgen_blocks(&c, "/r/in", 2_000, 8, 500).await;
                let res = run_job(&c, conf, wordcount_spec("/r/in", "/r/out")).await;
                assert!(res.duration_s > 0.0);
            })
            .detach();
        });
    }
}

#[test]
fn new_engine_trace_hashes_are_stable_across_runs() {
    // Beyond assert_deterministic's end-state checks: pin the full event
    // trace (events and polls) for each new engine across two fresh runs.
    let hash_of = |kind: ShuffleKind| {
        let sim = Sim::new(64);
        let c = cluster(&sim, 3, fabric_for(kind), 2 << 20);
        let conf = conf_for(kind, 2);
        sim.spawn_named("hash-driver", async move {
            teragen(&c, "/h/in", 8 << 20, false).await;
            run_job(&c, conf, terasort_spec("/h/in", "/h/out")).await;
        })
        .detach();
        sim.run();
        sim.trace_hash()
    };
    for kind in [ShuffleKind::NodeCombiner, ShuffleKind::MultiRail] {
        assert_eq!(hash_of(kind), hash_of(kind), "{kind:?} trace must replay");
    }
}
