//! Regression: many-source RDMA shuffle (outstanding requests exceeding the
//! UCR receive window) must not deadlock.

use rmr_core::cluster::{Cluster, NodeSpec};
use rmr_core::{run_job, JobConf, ShuffleKind};
use rmr_des::{Sim, SimTime};
use rmr_hdfs::HdfsConfig;
use rmr_net::FabricParams;
use rmr_workloads::{randomwriter, sort_spec};

#[test]
fn hadoop_a_many_sources_completes() {
    let sim = Sim::new(7);
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 64 << 20;
    let cluster = Cluster::build(
        &sim,
        FabricParams::ib_verbs_qdr(),
        &vec![spec; 2],
        HdfsConfig {
            block_size: 1 << 20,
            replication: 1,
            packet_size: 256 << 10,
        },
    );
    let mut conf = JobConf::hadoop_a();
    conf.num_reduces = 4;
    conf.shuffle_buffer = 8 << 20;
    let done = std::rc::Rc::new(std::cell::Cell::new(false));
    let d2 = std::rc::Rc::clone(&done);
    let c2 = cluster.clone();
    sim.spawn(async move {
        // 256 MB over 1 MB blocks → 256 maps → 128 sources per endpoint.
        randomwriter(&c2, "/in", 256 << 20, false).await;
        let _ = run_job(&c2, conf, sort_spec("/in", "/out")).await;
        d2.set(true);
    })
    .detach();
    sim.run_until(SimTime::from_nanos(3_600_000_000_000)); // 1h sim cap
    assert!(done.get(), "job deadlocked");
    let _ = ShuffleKind::HadoopA;
}
