//! Observability gates: the recorder must be a pure *observer* — turning it
//! on may not perturb the simulated schedule (same trace hash, same job
//! outcomes), and the event stream itself must replay byte-identically from
//! the same seed. The exported Chrome trace must pass schema validation on
//! a real multi-job run.

use std::cell::RefCell;
use std::rc::Rc;

use rmr_core::cluster::{Cluster, NodeSpec};
use rmr_core::{JobConf, JobResult, Runtime, SchedulePolicy, ShuffleKind};
use rmr_des::Sim;
use rmr_hdfs::HdfsConfig;
use rmr_net::FabricParams;
use rmr_obs::Recorder;
use rmr_workloads::{teragen, terasort_spec, textgen, wordcount_spec};

fn tiny_cluster(sim: &Sim, kind: ShuffleKind, workers: usize) -> Cluster {
    let fabric = if kind.uses_rdma() {
        FabricParams::ib_verbs_qdr()
    } else {
        FabricParams::ipoib_qdr()
    };
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 64 << 20;
    Cluster::build(
        sim,
        fabric,
        &vec![spec; workers],
        HdfsConfig {
            block_size: 4 << 20,
            replication: 1,
            packet_size: 1 << 20,
        },
    )
}

fn tiny_conf(kind: ShuffleKind) -> JobConf {
    let mut conf = JobConf::for_kind(kind);
    conf.num_reduces = 2;
    conf.map_slots = 2;
    conf.reduce_slots = 2;
    conf.shuffle_buffer = 16 << 20;
    conf.io_sort_buffer = 8 << 20;
    conf.prefetch_cache_bytes = 32 << 20;
    conf.osu_packet_bytes = 256 << 10;
    conf.hadoop_a_kv_per_packet = 2_000;
    conf
}

/// The two-job concurrent mix from the determinism gates (TeraSort +
/// WordCount through one runtime), with an explicit recorder. Returns the
/// trace hash and both job results.
fn run_two_job_mix(seed: u64, record: bool) -> (u64, Vec<JobResult>, Recorder) {
    let sim = Sim::new(seed);
    let obs = if record {
        Recorder::on(&sim)
    } else {
        Recorder::off()
    };
    let cluster = tiny_cluster(&sim, ShuffleKind::OsuIb, 3);
    let conf = tiny_conf(ShuffleKind::OsuIb);
    let results: Rc<RefCell<Vec<JobResult>>> = Rc::new(RefCell::new(Vec::new()));
    let r2 = Rc::clone(&results);
    let obs2 = obs.clone();
    sim.spawn_named("multijob-driver", async move {
        teragen(&cluster, "/tera", 12 << 20, false).await;
        textgen(&cluster, "/text", 400, 12).await;
        let rt = Runtime::with_obs(&cluster, conf.clone(), SchedulePolicy::Fifo, obs2);
        let a = rt.submit(conf.clone(), terasort_spec("/tera", "/out-a"));
        let b = rt.submit(conf.clone(), wordcount_spec("/text", "/out-b"));
        let ra = rt.join(a).await;
        let rb = rt.join(b).await;
        r2.borrow_mut().push(ra);
        r2.borrow_mut().push(rb);
    })
    .detach();
    sim.run();
    let results = Rc::try_unwrap(results)
        .map(RefCell::into_inner)
        .unwrap_or_else(|rc| rc.borrow().clone());
    assert_eq!(results.len(), 2, "mix hung");
    (sim.trace_hash(), results, obs)
}

#[test]
fn recorder_does_not_perturb_the_simulation() {
    let (hash_off, res_off, rec_off) = run_two_job_mix(43, false);
    let (hash_on, res_on, rec_on) = run_two_job_mix(43, true);
    assert!(rec_off.is_empty(), "off recorder captured events");
    assert!(!rec_on.is_empty(), "on recorder captured nothing");
    assert_eq!(
        hash_off, hash_on,
        "recorder-on changed the event schedule (trace hash)"
    );
    for (a, b) in res_off.iter().zip(&res_on) {
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.shuffled_bytes, b.shuffled_bytes);
        assert_eq!(a.maps, b.maps);
        assert_eq!(a.reduces, b.reduces);
        assert_eq!(a.cache_hits, b.cache_hits);
        assert_eq!(a.cache_misses, b.cache_misses);
    }
}

#[test]
fn obs_stream_replays_byte_identically() {
    let (hash_a, _, rec_a) = run_two_job_mix(77, true);
    let (hash_b, _, rec_b) = run_two_job_mix(77, true);
    assert_eq!(hash_a, hash_b);
    let jsonl_a = rec_a.to_jsonl();
    assert_eq!(jsonl_a, rec_b.to_jsonl(), "obs streams diverged");
    assert!(jsonl_a.contains("\"ev\":\"heartbeat\""));
    assert!(jsonl_a.contains("\"ev\":\"shuffle_response\""));
    assert!(jsonl_a.contains("\"ev\":\"attempt_finish\""));
}

#[test]
fn chrome_trace_from_a_real_run_validates() {
    let (_, results, rec) = run_two_job_mix(43, true);
    let events = rec.events();
    let doc = rmr_obs::chrome_trace(&events);
    let check = rmr_obs::validate_chrome_trace(&doc).expect("trace must validate");
    let attempts: usize = results.iter().map(|r| r.maps + r.reduces).sum();
    assert!(
        check.n_spans >= attempts,
        "expected >= {attempts} spans, got {}",
        check.n_spans
    );
    assert!(check.n_counters > 0, "no heartbeat counter samples");
    assert!(check.n_instants > 0, "no job-state instants");
}
