//! Leak gate for the persistent runtime: a long job sequence must not grow
//! any job-keyed state. Before the completion-time cleanup pass, finished
//! jobs stayed in the scheduler's job map forever and the PrefetchCache
//! kept per-job admission stats for every job ever run — both scale-out
//! killers for a sweep that pushes hundreds of jobs through one runtime.

use std::cell::RefCell;
use std::rc::Rc;

use rmr_core::cluster::{Cluster, NodeSpec};
use rmr_core::{JobConf, Runtime, ShuffleKind, StateFootprint};
use rmr_des::Sim;
use rmr_hdfs::HdfsConfig;
use rmr_net::FabricParams;
use rmr_workloads::{teragen, terasort_spec};

fn tiny_cluster(sim: &Sim, workers: usize) -> Cluster {
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 64 << 20;
    Cluster::build(
        sim,
        FabricParams::ib_verbs_qdr(),
        &vec![spec; workers],
        HdfsConfig {
            block_size: 4 << 20,
            replication: 1,
            packet_size: 1 << 20,
        },
    )
}

fn tiny_conf() -> JobConf {
    let mut conf = JobConf::for_kind(ShuffleKind::OsuIb);
    conf.num_reduces = 2;
    conf.map_slots = 2;
    conf.reduce_slots = 2;
    conf.shuffle_buffer = 16 << 20;
    conf.io_sort_buffer = 8 << 20;
    conf.prefetch_cache_bytes = 32 << 20;
    conf.osu_packet_bytes = 256 << 10;
    conf
}

#[test]
fn hundred_job_sequence_leaves_no_job_keyed_state() {
    const JOBS: usize = 100;
    let sim = Sim::new(0xB0B);
    let cluster = tiny_cluster(&sim, 2);
    let conf = tiny_conf();
    let peak: Rc<RefCell<Option<StateFootprint>>> = Rc::new(RefCell::new(None));
    let final_fp: Rc<RefCell<Option<StateFootprint>>> = Rc::new(RefCell::new(None));
    let peak2 = Rc::clone(&peak);
    let final2 = Rc::clone(&final_fp);
    sim.spawn_named("bounded-driver", async move {
        teragen(&cluster, "/in", 8 << 20, false).await;
        let rt = Runtime::start(&cluster, conf.clone());
        for i in 0..JOBS {
            let id = rt.submit(conf.clone(), terasort_spec("/in", &format!("/out{i}")));
            let res = rt.join(id).await;
            assert!(res.duration_s > 0.0, "job {i} produced no work");
            let fp = rt.state_footprint();
            // Between jobs everything is joined: the footprint must be a
            // small per-cluster constant, never a function of `i`.
            assert!(fp.total() <= 4, "job-keyed state grew by job {i}: {fp:?}");
            let mut p = peak2.borrow_mut();
            if p.is_none_or(|prev| fp.total() > prev.total()) {
                *p = Some(fp);
            }
        }
        *final2.borrow_mut() = Some(rt.state_footprint());
    })
    .detach();
    sim.run();
    let fp = final_fp.borrow().expect("driver hung");
    assert_eq!(
        fp,
        StateFootprint::default(),
        "state left after {JOBS} jobs"
    );
    // The assertion above is the gate; the peak is diagnostic context.
    eprintln!("peak between-job footprint: {:?}", peak.borrow());
}

#[test]
fn kill_restart_complete_drains_to_zero_footprint() {
    // The footprint gate must also hold across a node death: killing a
    // TaskTracker mid-job re-queues its work (and marks the node down in
    // the footprint); after a restart and the job's completion, every piece
    // of job-keyed *and* liveness state must drain back to zero.
    let sim = Sim::new(0xDEAD);
    let cluster = tiny_cluster(&sim, 3);
    let conf = tiny_conf();
    let final_fp: Rc<RefCell<Option<StateFootprint>>> = Rc::new(RefCell::new(None));
    let final2 = Rc::clone(&final_fp);
    let sim2 = sim.clone();
    sim.spawn_named("kill-restart-driver", async move {
        teragen(&cluster, "/in", 32 << 20, false).await;
        let rt = Runtime::start(&cluster, conf.clone());
        let id = rt.submit(conf.clone(), terasort_spec("/in", "/out"));
        // Wait until the map wave is under way, then pull a node out.
        for i in 0..=500 {
            assert!(i < 500, "map wave never started:\n{}", rt.dump().render());
            sim2.sleep(rmr_des::SimDuration::from_secs_f64(0.2)).await;
            let snap = rt.dump();
            if snap.jobs.first().is_some_and(|j| j.maps_completed >= 1) {
                break;
            }
        }
        rt.kill_node(1);
        let mid = rt.state_footprint();
        assert_eq!(
            mid.down_nodes, 1,
            "kill not reflected in footprint: {mid:?}"
        );
        assert!(
            rt.dump().nodes[1].epoch >= 1 || !rt.dump().nodes[1].alive,
            "snapshot must show the node down"
        );
        sim2.sleep(rmr_des::SimDuration::from_secs_f64(3.0)).await;
        rt.restart_node(1);
        let mut done = false;
        for _ in 0..3000 {
            if rt.poll(id).is_some() {
                done = true;
                break;
            }
            sim2.sleep(rmr_des::SimDuration::from_secs_f64(0.2)).await;
        }
        assert!(done, "job hung after kill/restart:\n{}", rt.dump().render());
        let res = rt.join(id).await;
        assert!(res.duration_s > 0.0, "job died with the node");
        *final2.borrow_mut() = Some(rt.state_footprint());
    })
    .detach();
    sim.run();
    let fp = final_fp.borrow().expect("driver hung");
    assert_eq!(
        fp,
        StateFootprint::default(),
        "state left after kill/restart: {fp:?}"
    );
}

#[test]
fn concurrent_batch_drains_to_zero_footprint() {
    // Same gate under concurrent submission: 10 jobs at once, joined after.
    let sim = Sim::new(7);
    let cluster = tiny_cluster(&sim, 3);
    let conf = tiny_conf();
    let final_fp: Rc<RefCell<Option<StateFootprint>>> = Rc::new(RefCell::new(None));
    let final2 = Rc::clone(&final_fp);
    sim.spawn_named("batch-driver", async move {
        teragen(&cluster, "/in", 8 << 20, false).await;
        let rt = Runtime::start(&cluster, conf.clone());
        let ids: Vec<_> = (0..10)
            .map(|i| rt.submit(conf.clone(), terasort_spec("/in", &format!("/b{i}"))))
            .collect();
        // In-flight state is naturally non-zero while jobs run; the gate is
        // that joining everything returns it all.
        for id in ids {
            rt.join(id).await;
        }
        *final2.borrow_mut() = Some(rt.state_footprint());
    })
    .detach();
    sim.run();
    let fp = final_fp.borrow().expect("driver hung");
    assert_eq!(fp, StateFootprint::default(), "batch left state: {fp:?}");
}
