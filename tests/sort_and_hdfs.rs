//! Integration tests beyond TeraSort: the Sort benchmark end to end with
//! real variable-size records, WordCount correctness against a sequential
//! oracle, and HDFS behaviour under job load.

use std::cell::RefCell;
use std::rc::Rc;

use rdma_mapred::prelude::*;
use rdma_mapred::workloads::{read_counts, textgen, wordcount_spec, wordcount_spec_no_combiner};

fn cluster(sim: &Sim, workers: usize, fabric: FabricParams, block: u64) -> Cluster {
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 256 << 20;
    Cluster::build(
        sim,
        fabric,
        &vec![spec; workers],
        HdfsConfig {
            block_size: block,
            replication: 1,
            packet_size: 1 << 20,
        },
    )
}

#[test]
fn sort_with_variable_records_validates_on_all_engines() {
    for (kind, fabric) in [
        (ShuffleKind::Vanilla, FabricParams::ipoib_qdr()),
        (ShuffleKind::HadoopA, FabricParams::ib_verbs_qdr()),
        (ShuffleKind::OsuIb, FabricParams::ib_verbs_qdr()),
    ] {
        let sim = Sim::new(31);
        let c = cluster(&sim, 3, fabric, 2 << 20);
        let reduces = 3;
        let mut conf = JobConf::for_kind(kind);
        conf.num_reduces = reduces;
        conf.shuffle_buffer = 8 << 20;
        conf.io_sort_buffer = 8 << 20;
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        let c2 = c.clone();
        sim.spawn(async move {
            // Variable-size records up to 20 kB — the §IV-C stressor.
            let records = randomwriter(&c2, "/s/in", 8 << 20, true).await;
            let _res = run_job(&c2, conf, sort_spec("/s/in", "/s/out")).await;
            let validated = validate_sort(&c2, "/s/out", reduces, records)
                .await
                .expect("per-partition order + conservation");
            *d.borrow_mut() = Some(validated);
        })
        .detach();
        sim.run();
        let validated = done.borrow_mut().take().unwrap_or_else(|| {
            panic!("{kind:?}: sort job hung");
        });
        assert!(validated > 100, "{kind:?}: too few records ({validated})");
    }
}

#[test]
fn wordcount_matches_sequential_oracle() {
    let sim = Sim::new(32);
    let c = cluster(&sim, 2, FabricParams::ib_verbs_qdr(), 2 << 20);
    let done = Rc::new(RefCell::new(None));
    let d = Rc::clone(&done);
    let c2 = c.clone();
    sim.spawn(async move {
        textgen(&c2, "/w/in", 5_000, 8).await;
        // Sequential oracle: decode the input and count by hand.
        let mut oracle = std::collections::BTreeMap::<String, u64>::new();
        let mut r = c2.hdfs.open("/w/in", c2.workers[0].id).await.unwrap();
        while let Some(b) = r.next_block().await.unwrap() {
            for rec in rdma_mapred::core::decode_records(b.data.unwrap()) {
                for w in String::from_utf8_lossy(&rec.value).split_whitespace() {
                    *oracle.entry(w.to_string()).or_insert(0) += 1;
                }
            }
        }
        let mut conf = JobConf::osu_ib();
        conf.num_reduces = 3;
        let _res = run_job(&c2, conf, wordcount_spec("/w/in", "/w/out")).await;
        let counts = read_counts(&c2, "/w/out", 3).await.unwrap();
        *d.borrow_mut() = Some((oracle, counts));
    })
    .detach();
    sim.run();
    let (oracle, counts) = done.borrow_mut().take().expect("job hung");
    assert_eq!(counts, oracle, "MapReduce counts must equal the oracle");
}

#[test]
fn hdfs_replication_survives_job_load() {
    // Replication 3 output: every part file's blocks land on 3 distinct
    // DataNodes even while the job hammers the same disks.
    let sim = Sim::new(33);
    let c = cluster(&sim, 4, FabricParams::ib_verbs_qdr(), 2 << 20);
    let done = Rc::new(RefCell::new(false));
    let d = Rc::clone(&done);
    let c2 = c.clone();
    sim.spawn(async move {
        teragen(&c2, "/r/in", 8 << 20, false).await;
        let mut conf = JobConf::osu_ib();
        conf.num_reduces = 4;
        conf.output_replication = 3;
        let _ = run_job(&c2, conf, terasort_spec("/r/in", "/r/out")).await;
        for ridx in 0..4 {
            let locs = c2
                .hdfs
                .split_locations(&format!("/r/out/part-{ridx:05}"))
                .unwrap();
            for (meta, nodes) in locs {
                assert_eq!(meta.replicas.len(), 3, "replication honoured");
                // simcheck: allow(unordered-map) -- only len() is used, never iterated
                let distinct: std::collections::HashSet<_> = nodes.iter().collect();
                assert_eq!(distinct.len(), 3, "replicas on distinct nodes");
            }
        }
        *d.borrow_mut() = true;
    })
    .detach();
    sim.run();
    assert!(*done.borrow(), "job hung");
}

#[test]
fn back_to_back_jobs_on_one_cluster() {
    // Two jobs run back to back through the thin `run_job` wrapper (each
    // standing up its own runtime over the shared disks and HDFS): the
    // second must still validate.
    let sim = Sim::new(34);
    let c = cluster(&sim, 3, FabricParams::ib_verbs_qdr(), 2 << 20);
    let done = Rc::new(RefCell::new(None));
    let d = Rc::clone(&done);
    let c2 = c.clone();
    sim.spawn(async move {
        let records = teragen(&c2, "/j/in", 6 << 20, true).await;
        let mut conf = JobConf::osu_ib();
        conf.num_reduces = 3;
        let _first = run_job(&c2, conf.clone(), terasort_spec("/j/in", "/j/out1")).await;
        let second = run_job(&c2, conf, terasort_spec("/j/in", "/j/out2")).await;
        let rep = teravalidate(&c2, "/j/out2", 3, records).await.unwrap();
        *d.borrow_mut() = Some((second.duration_s, rep.records));
    })
    .detach();
    sim.run();
    let (dur, records) = done.borrow_mut().take().expect("jobs hung");
    assert!(dur > 0.0);
    assert!(records > 10_000);
}

#[test]
fn combiner_shrinks_shuffle_and_preserves_counts() {
    let mut shuffled = Vec::new();
    let mut outputs = Vec::new();
    for with_combiner in [false, true] {
        let sim = Sim::new(35);
        let c = cluster(&sim, 2, FabricParams::ib_verbs_qdr(), 2 << 20);
        let done = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        let c2 = c.clone();
        sim.spawn(async move {
            textgen(&c2, "/cb/in", 4_000, 10).await;
            let spec = if with_combiner {
                wordcount_spec("/cb/in", "/cb/out")
            } else {
                wordcount_spec_no_combiner("/cb/in", "/cb/out")
            };
            let mut conf = JobConf::osu_ib();
            conf.num_reduces = 2;
            let res = run_job(&c2, conf, spec).await;
            let counts = read_counts(&c2, "/cb/out", 2).await.unwrap();
            *d.borrow_mut() = Some((res.shuffled_bytes, counts));
        })
        .detach();
        sim.run();
        let (bytes, counts) = done.borrow_mut().take().expect("job hung");
        let total: u64 = counts.values().sum();
        assert_eq!(total, 4_000 * 10, "counts exact with and without combiner");
        shuffled.push(bytes);
        outputs.push(counts);
    }
    assert_eq!(outputs[0], outputs[1], "identical results either way");
    assert!(
        shuffled[1] * 10 < shuffled[0],
        "combiner must collapse the shuffle: {} vs {}",
        shuffled[1],
        shuffled[0]
    );
}
