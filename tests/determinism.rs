//! Replay-determinism gates: the same seed must reproduce the exact event
//! schedule (checked via the executor's trace hash), and a full job run must
//! leave no live-but-unrunnable task behind. The multi-job tests drive the
//! persistent cluster runtime with concurrent submissions.

use std::cell::RefCell;
use std::rc::Rc;

use rmr_core::cluster::{Cluster, NodeSpec};
use rmr_core::{run_job, JobConf, JobResult, Runtime, ShuffleKind};
use rmr_des::{assert_deterministic, Sim};
use rmr_hdfs::HdfsConfig;
use rmr_net::FabricParams;
use rmr_workloads::{teragen, terasort_spec, textgen, wordcount_spec};

fn tiny_cluster(sim: &Sim, kind: ShuffleKind, workers: usize) -> Cluster {
    let fabric = if kind.uses_rdma() {
        FabricParams::ib_verbs_qdr()
    } else {
        FabricParams::ipoib_qdr()
    };
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 64 << 20;
    Cluster::build(
        sim,
        fabric,
        &vec![spec; workers],
        HdfsConfig {
            block_size: 4 << 20,
            replication: 1,
            packet_size: 1 << 20,
        },
    )
}

fn tiny_conf(kind: ShuffleKind) -> JobConf {
    let mut conf = JobConf::for_kind(kind);
    conf.num_reduces = 2;
    conf.map_slots = 2;
    conf.reduce_slots = 2;
    conf.shuffle_buffer = 16 << 20;
    conf.io_sort_buffer = 8 << 20;
    conf.prefetch_cache_bytes = 32 << 20;
    conf.osu_packet_bytes = 256 << 10;
    conf.hadoop_a_kv_per_packet = 2_000;
    conf
}

fn spawn_terasort(sim: &Sim, kind: ShuffleKind, total_bytes: u64) {
    let cluster = tiny_cluster(sim, kind, 3);
    let conf = tiny_conf(kind);
    sim.spawn_named("terasort-driver", async move {
        teragen(&cluster, "/in", total_bytes, false).await;
        let res = run_job(&cluster, conf, terasort_spec("/in", "/out")).await;
        assert!(res.duration_s > 0.0);
    })
    .detach();
}

/// Two jobs — a TeraSort and a WordCount — submitted back-to-back onto one
/// runtime, shuffling through the same TaskTrackers concurrently.
fn spawn_two_concurrent_jobs(sim: &Sim) {
    let cluster = tiny_cluster(sim, ShuffleKind::OsuIb, 3);
    let conf = tiny_conf(ShuffleKind::OsuIb);
    sim.spawn_named("multijob-driver", async move {
        teragen(&cluster, "/tera", 12 << 20, false).await;
        textgen(&cluster, "/text", 400, 12).await;
        let rt = Runtime::start(&cluster, conf.clone());
        let a = rt.submit(conf.clone(), terasort_spec("/tera", "/out-a"));
        let b = rt.submit(conf.clone(), wordcount_spec("/text", "/out-b"));
        let ra = rt.join(a).await;
        let rb = rt.join(b).await;
        assert!(ra.duration_s > 0.0);
        assert!(rb.duration_s > 0.0);
        assert_eq!(rt.active_jobs(), 0);
    })
    .detach();
}

#[test]
fn terasort_replays_identically_per_engine() {
    for kind in [
        ShuffleKind::Vanilla,
        ShuffleKind::HadoopA,
        ShuffleKind::OsuIb,
    ] {
        assert_deterministic(41, |sim| spawn_terasort(sim, kind, 16 << 20));
    }
}

#[test]
fn concurrent_terasort_and_wordcount_replay_identically() {
    assert_deterministic(43, spawn_two_concurrent_jobs);
}

#[test]
fn four_concurrent_jobs_on_eight_nodes_are_deterministic() {
    let run = || -> (u64, Vec<JobResult>) {
        let sim = Sim::new(91);
        let cluster = tiny_cluster(&sim, ShuffleKind::OsuIb, 8);
        let conf = tiny_conf(ShuffleKind::OsuIb);
        let results: Rc<RefCell<Vec<JobResult>>> = Rc::new(RefCell::new(Vec::new()));
        let r2 = Rc::clone(&results);
        sim.spawn_named("multijob-driver", async move {
            for i in 0..4 {
                teragen(&cluster, &format!("/in{i}"), 8 << 20, false).await;
            }
            let rt = Runtime::start(&cluster, conf.clone());
            let ids: Vec<_> = (0..4)
                .map(|i| {
                    rt.submit(
                        conf.clone(),
                        terasort_spec(&format!("/in{i}"), &format!("/out{i}")),
                    )
                })
                .collect();
            for id in ids {
                let res = rt.join(id).await;
                r2.borrow_mut().push(res);
            }
        })
        .detach();
        sim.run();
        let hash = sim.trace_hash();
        let results = results.borrow().clone();
        (hash, results)
    };
    let (h1, res1) = run();
    let (h2, res2) = run();
    assert_eq!(h1, h2, "same seed must reproduce the event trace exactly");
    assert_eq!(res1.len(), 4, "all four jobs must complete");
    for (a, b) in res1.iter().zip(&res2) {
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.queue_wait_s, b.queue_wait_s);
        assert_eq!(a.slot_occupancy, b.slot_occupancy);
    }
    for r in &res1 {
        assert!(r.queue_wait_s >= 0.0);
        assert!(
            r.slot_occupancy > 0.0 && r.slot_occupancy <= 1.0,
            "slot occupancy must be a fraction of the cluster's slot-seconds, got {}",
            r.slot_occupancy
        );
        assert_eq!(r.shuffled_bytes, r.input_bytes, "per-job conservation");
    }
}

#[test]
fn different_workloads_follow_different_schedules() {
    // The hash must actually depend on the schedule, not collapse to a
    // constant: a different input size changes packet counts and timing, so
    // the traces must diverge.
    let hash_of = |total: u64| {
        let sim = Sim::new(41);
        spawn_terasort(&sim, ShuffleKind::OsuIb, total);
        sim.run();
        sim.trace_hash()
    };
    assert_ne!(hash_of(16 << 20), hash_of(24 << 20));
}

#[test]
fn terasort_quiesces_with_no_stalled_tasks() {
    // Server loops (responder pools, listeners, prefetchers, parked
    // heartbeat daemons) are daemons and expected to park forever;
    // everything else must have finished.
    let sim = Sim::new(77);
    spawn_terasort(&sim, ShuffleKind::OsuIb, 16 << 20);
    let report = sim.step_until_no_events();
    report.assert_clean();
    assert!(report.daemons > 0, "OSU-IB runs spawn daemon server loops");
    assert!(report.time.as_nanos() > 0);
}

#[test]
fn multijob_quiesces_with_no_stalled_tasks() {
    let sim = Sim::new(78);
    spawn_two_concurrent_jobs(&sim);
    let report = sim.step_until_no_events();
    report.assert_clean();
}
