//! Replay-determinism gates: the same seed must reproduce the exact event
//! schedule (checked via the executor's trace hash), and a full job run must
//! leave no live-but-unrunnable task behind.

use rmr_core::cluster::{Cluster, NodeSpec};
use rmr_core::{run_job, JobConf, ShuffleKind};
use rmr_des::{assert_deterministic, Sim};
use rmr_hdfs::HdfsConfig;
use rmr_net::FabricParams;
use rmr_workloads::{teragen, terasort_spec};

fn tiny_cluster(sim: &Sim, kind: ShuffleKind) -> Cluster {
    let fabric = match kind {
        ShuffleKind::Vanilla => FabricParams::ipoib_qdr(),
        _ => FabricParams::ib_verbs_qdr(),
    };
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 64 << 20;
    Cluster::build(
        sim,
        fabric,
        &vec![spec; 3],
        HdfsConfig {
            block_size: 4 << 20,
            replication: 1,
            packet_size: 1 << 20,
        },
    )
}

fn tiny_conf(kind: ShuffleKind) -> JobConf {
    let mut conf = match kind {
        ShuffleKind::Vanilla => JobConf::vanilla(),
        ShuffleKind::HadoopA => JobConf::hadoop_a(),
        ShuffleKind::OsuIb => JobConf::osu_ib(),
    };
    conf.num_reduces = 2;
    conf.map_slots = 2;
    conf.reduce_slots = 2;
    conf.shuffle_buffer = 16 << 20;
    conf.io_sort_buffer = 8 << 20;
    conf.prefetch_cache_bytes = 32 << 20;
    conf.osu_packet_bytes = 256 << 10;
    conf.hadoop_a_kv_per_packet = 2_000;
    conf
}

fn spawn_terasort(sim: &Sim, kind: ShuffleKind, total_bytes: u64) {
    let cluster = tiny_cluster(sim, kind);
    let conf = tiny_conf(kind);
    sim.spawn_named("terasort-driver", async move {
        teragen(&cluster, "/in", total_bytes, false).await;
        let res = run_job(&cluster, conf, terasort_spec("/in", "/out")).await;
        assert!(res.duration_s > 0.0);
    })
    .detach();
}

#[test]
fn terasort_replays_identically_per_engine() {
    for kind in [
        ShuffleKind::Vanilla,
        ShuffleKind::HadoopA,
        ShuffleKind::OsuIb,
    ] {
        assert_deterministic(41, |sim| spawn_terasort(sim, kind, 16 << 20));
    }
}

#[test]
fn different_workloads_follow_different_schedules() {
    // The hash must actually depend on the schedule, not collapse to a
    // constant: a different input size changes packet counts and timing, so
    // the traces must diverge.
    let hash_of = |total: u64| {
        let sim = Sim::new(41);
        spawn_terasort(&sim, ShuffleKind::OsuIb, total);
        sim.run();
        sim.trace_hash()
    };
    assert_ne!(hash_of(16 << 20), hash_of(24 << 20));
}

#[test]
fn terasort_quiesces_with_no_stalled_tasks() {
    // Server loops (responder pools, listeners, prefetchers) are daemons
    // and expected to park forever; everything else must have finished.
    let sim = Sim::new(77);
    spawn_terasort(&sim, ShuffleKind::OsuIb, 16 << 20);
    let report = sim.step_until_no_events();
    report.assert_clean();
    assert!(report.daemons > 0, "OSU-IB runs spawn daemon server loops");
    assert!(report.time.as_nanos() > 0);
}
