//! End-to-end job runs: every shuffle engine, real and synthetic data
//! planes, with output validation.

use rmr_core::cluster::{Cluster, NodeSpec};
use rmr_core::{run_job, run_job_with_faults, FaultPlan, JobConf, JobResult, ShuffleKind};
use rmr_des::Sim;
use rmr_hdfs::HdfsConfig;
use rmr_net::FabricParams;
use rmr_workloads::{teragen, terasort_spec, teravalidate};

fn small_cluster(sim: &Sim, workers: usize, fabric: FabricParams) -> Cluster {
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 256 << 20;
    Cluster::build(
        sim,
        fabric,
        &vec![spec; workers],
        HdfsConfig {
            block_size: 4 << 20,
            replication: 1,
            packet_size: 1 << 20,
        },
    )
}

fn small_conf(kind: ShuffleKind, reduces: usize) -> JobConf {
    let mut conf = JobConf::for_kind(kind);
    conf.num_reduces = reduces;
    conf.map_slots = 2;
    conf.reduce_slots = 2;
    conf.shuffle_buffer = 32 << 20;
    conf.io_sort_buffer = 16 << 20;
    conf.prefetch_cache_bytes = 64 << 20;
    conf.osu_packet_bytes = 256 << 10;
    conf.hadoop_a_kv_per_packet = 2_000;
    conf
}

fn fabric_for(kind: ShuffleKind) -> FabricParams {
    if kind.uses_rdma() {
        FabricParams::ib_verbs_qdr()
    } else {
        FabricParams::ipoib_qdr()
    }
}

fn run_real_terasort(kind: ShuffleKind, seed: u64) -> (JobResult, u64) {
    let sim = Sim::new(seed);
    let cluster = small_cluster(&sim, 3, fabric_for(kind));
    let reduces = 3;
    let conf = small_conf(kind, reduces);
    let result = std::rc::Rc::new(std::cell::RefCell::new(None));
    let r2 = std::rc::Rc::clone(&result);
    let c2 = cluster.clone();
    sim.spawn(async move {
        let total: u64 = 12 << 20; // 12 MB real data
        let expected_records = teragen(&c2, "/tin", total, true).await;
        let res = run_job(&c2, conf, terasort_spec("/tin", "/tout")).await;
        let report = teravalidate(&c2, "/tout", reduces, expected_records)
            .await
            .expect("teravalidate");
        *r2.borrow_mut() = Some((res, report.records));
    })
    .detach();
    sim.run();
    let out = result.borrow_mut().take().expect("job did not finish");
    out
}

#[test]
fn vanilla_real_terasort_validates() {
    let (res, records) = run_real_terasort(ShuffleKind::Vanilla, 101);
    assert!(records > 100_000, "12 MB → >100k records, got {records}");
    assert!(res.duration_s > 0.0);
    assert_eq!(res.shuffle, ShuffleKind::Vanilla);
    assert!(res.shuffled_bytes > 10 << 20);
}

#[test]
fn hadoop_a_real_terasort_validates() {
    let (res, records) = run_real_terasort(ShuffleKind::HadoopA, 102);
    assert!(records > 100_000);
    assert_eq!(res.shuffle, ShuffleKind::HadoopA);
}

#[test]
fn osu_ib_real_terasort_validates() {
    let (res, records) = run_real_terasort(ShuffleKind::OsuIb, 103);
    assert!(records > 100_000);
    assert_eq!(res.shuffle, ShuffleKind::OsuIb);
    assert!(
        res.cache_hits > 0,
        "prefetch cache must see hits in an OSU run"
    );
}

#[test]
fn synthetic_terasort_runs_all_engines() {
    for kind in [
        ShuffleKind::Vanilla,
        ShuffleKind::HadoopA,
        ShuffleKind::OsuIb,
    ] {
        let sim = Sim::new(200);
        let cluster = small_cluster(&sim, 4, fabric_for(kind));
        let conf = small_conf(kind, 4);
        let done = std::rc::Rc::new(std::cell::RefCell::new(None));
        let d2 = std::rc::Rc::clone(&done);
        let c2 = cluster.clone();
        sim.spawn(async move {
            teragen(&c2, "/in", 64 << 20, false).await;
            let res = run_job(&c2, conf, terasort_spec("/in", "/out")).await;
            *d2.borrow_mut() = Some(res);
        })
        .detach();
        sim.run();
        let res = done.borrow_mut().take().unwrap_or_else(|| {
            panic!("{kind:?}: job hung (simulation quiesced before completion)")
        });
        // Conservation: all intermediate bytes reach the reducers.
        assert_eq!(
            res.shuffled_bytes, res.input_bytes,
            "{kind:?}: ratio-1.0 job must shuffle exactly the input volume"
        );
        assert_eq!(res.output_bytes, res.input_bytes, "{kind:?}");
        assert_eq!(res.maps, (res.input_bytes as usize).div_ceil(4 << 20));
    }
}

#[test]
fn identical_seeds_are_deterministic() {
    let (a, _) = run_real_terasort(ShuffleKind::OsuIb, 777);
    let (b, _) = run_real_terasort(ShuffleKind::OsuIb, 777);
    assert_eq!(a.duration_s, b.duration_s);
    assert_eq!(a.shuffled_bytes, b.shuffled_bytes);
    assert_eq!(a.cache_hits, b.cache_hits);
}

#[test]
fn failed_map_is_reexecuted_and_job_still_validates() {
    let sim = Sim::new(42);
    let cluster = small_cluster(&sim, 3, FabricParams::ib_verbs_qdr());
    let reduces = 3;
    let conf = small_conf(ShuffleKind::OsuIb, reduces);
    let result = std::rc::Rc::new(std::cell::RefCell::new(None));
    let r2 = std::rc::Rc::clone(&result);
    let c2 = cluster.clone();
    sim.spawn(async move {
        let expected = teragen(&c2, "/in", 12 << 20, true).await;
        let plan = FaultPlan::fail_map_once(0, 1);
        let res = run_job_with_faults(&c2, conf, terasort_spec("/in", "/out"), &plan).await;
        let report = teravalidate(&c2, "/out", reduces, expected).await.unwrap();
        *r2.borrow_mut() = Some((res, report));
    })
    .detach();
    sim.run();
    let (res, _report) = result.borrow_mut().take().expect("job hung");
    assert_eq!(res.failed_map_attempts, 1);
    assert_eq!(res.failed_reduce_attempts, 0);
}

#[test]
fn timeline_records_every_attempt() {
    let (res, _) = run_real_terasort(ShuffleKind::OsuIb, 404);
    use rmr_core::timeline::{Outcome, TaskKind};
    let maps = res
        .timeline
        .iter()
        .filter(|e| e.kind == TaskKind::Map && e.outcome == Outcome::Completed)
        .count();
    let reduces = res
        .timeline
        .iter()
        .filter(|e| e.kind == TaskKind::Reduce && e.outcome == Outcome::Completed)
        .count();
    assert_eq!(maps, res.maps, "one completed attempt per map");
    assert_eq!(reduces, res.reduces, "one completed attempt per reduce");
    for e in &res.timeline {
        assert!(e.end_s >= e.start_s);
        assert!(e.end_s <= res.end_s + 1e-6);
    }
}

#[test]
fn failed_reduce_is_reexecuted_and_job_still_validates() {
    let sim = Sim::new(55);
    let cluster = small_cluster(&sim, 3, FabricParams::ib_verbs_qdr());
    let reduces = 3;
    let conf = small_conf(ShuffleKind::OsuIb, reduces);
    let result = std::rc::Rc::new(std::cell::RefCell::new(None));
    let r2 = std::rc::Rc::clone(&result);
    let c2 = cluster.clone();
    sim.spawn(async move {
        let expected = teragen(&c2, "/in", 12 << 20, true).await;
        let plan = FaultPlan::fail_reduce_once(0, 2);
        let res = run_job_with_faults(&c2, conf, terasort_spec("/in", "/out"), &plan).await;
        let report = teravalidate(&c2, "/out", reduces, expected).await.unwrap();
        *r2.borrow_mut() = Some((res, report));
    })
    .detach();
    sim.run();
    let (res, _report) = result.borrow_mut().take().expect("job hung");
    assert_eq!(
        res.failed_reduce_attempts, 1,
        "the reduce failure counts once, as a reduce failure"
    );
    assert_eq!(
        res.failed_map_attempts, 0,
        "a reduce re-execution is not a map failure"
    );
}

#[test]
fn speculative_execution_completes_and_validates() {
    let sim = Sim::new(66);
    let cluster = small_cluster(&sim, 3, FabricParams::ib_verbs_qdr());
    let reduces = 3;
    let mut conf = small_conf(ShuffleKind::OsuIb, reduces);
    conf.speculative_maps = true;
    let result = std::rc::Rc::new(std::cell::RefCell::new(None));
    let r2 = std::rc::Rc::clone(&result);
    let c2 = cluster.clone();
    sim.spawn(async move {
        let expected = teragen(&c2, "/in", 12 << 20, true).await;
        let res = run_job(&c2, conf, terasort_spec("/in", "/out")).await;
        let report = teravalidate(&c2, "/out", reduces, expected).await.unwrap();
        *r2.borrow_mut() = Some((res, report.records));
    })
    .detach();
    sim.run();
    let (_res, records) = result.borrow_mut().take().expect("job hung");
    assert!(records > 100_000, "speculation must not corrupt output");
}
