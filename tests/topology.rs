//! Hierarchical-fabric gates (DESIGN.md §13): a fully provisioned rack
//! topology must replay **bit-identically** against the flat single-switch
//! network the paper's figures use, and an oversubscribed core must actually
//! bound cross-rack throughput.

use std::cell::Cell;
use std::rc::Rc;

use proptest::prelude::*;
use rmr_cluster::{run_experiment_traced, Bench, Experiment, System, Testbed};
use rmr_des::{Sim, SimTime};
use rmr_net::{FabricParams, Network, NodeId, Topology};

/// Runs one fig4a-shaped point (4 compute nodes, 1 HDD, TeraSort) on the
/// given testbed and returns (record JSON, trace hash).
fn fig4a_point(system: System, testbed: Testbed) -> (String, u64) {
    let exp = Experiment::new("topo", Bench::TeraSort, system, testbed, 20.0, 42);
    let (rec, hash) = run_experiment_traced(&exp);
    (rec.to_json(), hash)
}

#[test]
fn fully_provisioned_racks_replay_flat_bit_identically() {
    // Oversubscription 1.0 adds no fluid legs (the core cannot bind), so
    // the whole event schedule — not just the results — must match flat.
    // Checked across a socket engine and both RDMA engines, since they
    // schedule the network differently.
    for system in [System::IpoIb, System::HadoopA, System::OsuIb] {
        let (flat_rec, flat_hash) = fig4a_point(system, Testbed::compute(4, 1));
        let (rack_rec, rack_hash) = fig4a_point(system, Testbed::compute(4, 1).with_racks(2, 1.0));
        assert_eq!(
            flat_hash, rack_hash,
            "{system:?}: oversub-1.0 racks must not perturb the trace"
        );
        assert_eq!(flat_rec, rack_rec, "{system:?}: records must match");
    }
}

#[test]
fn single_rack_oversubscription_replays_flat_bit_identically() {
    // With every node in one rack there is no cross-rack traffic, so even a
    // heavily oversubscribed core must change nothing.
    let (flat_rec, flat_hash) = fig4a_point(System::OsuIb, Testbed::compute(4, 1));
    let (rack_rec, rack_hash) =
        fig4a_point(System::OsuIb, Testbed::compute(4, 1).with_racks(64, 4.0));
    assert_eq!(flat_hash, rack_hash, "one-rack topology must replay flat");
    assert_eq!(flat_rec, rack_rec);
}

/// Drives `flows` simultaneous rack-0 → rack-1 transfers and returns
/// (last finish time in seconds, total bytes, core capacity in B/s).
fn cross_rack_storm(
    rack_size: usize,
    oversub: f64,
    flows: &[(usize, usize, u64)],
) -> (f64, u64, f64) {
    let sim = Sim::new(9);
    let mut f = FabricParams::ib_verbs_qdr();
    f.link_bw = 1000.0;
    f.latency = rmr_des::SimDuration::ZERO;
    f.cpu_per_message = 0.0;
    let core_bw = Topology::racks(rack_size, oversub).core_bw(f.link_bw);
    let net = Network::with_topology(&sim, f, Topology::racks(rack_size, oversub));
    let nodes: Vec<NodeId> = (0..rack_size * 2).map(|_| net.add_node(None)).collect();
    let last = Rc::new(Cell::new(SimTime::ZERO));
    let mut total = 0u64;
    for &(s, d, bytes) in flows {
        total += bytes;
        let src = nodes[s % rack_size];
        let dst = nodes[rack_size + d % rack_size];
        let net = net.clone();
        let sim2 = sim.clone();
        let l = Rc::clone(&last);
        sim.spawn(async move {
            net.transfer(src, dst, bytes).await;
            l.set(l.get().max(sim2.now()));
        })
        .detach();
    }
    sim.run();
    assert_eq!(net.cross_rack_bytes(), total as f64);
    (last.get().as_secs_f64(), total, core_bw)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// However the flows are spread over the racks' hosts, the aggregate
    /// cross-rack rate can never beat the core uplink: the storm cannot
    /// finish before `total_bytes / core_bw`.
    #[test]
    fn cross_rack_rate_is_bounded_by_core_capacity(
        rack_size in 2usize..5,
        oversub_tenths in 15u32..80,
        flows in proptest::collection::vec(
            (0usize..8, 0usize..8, 10_000u64..500_000), 2usize..10),
    ) {
        let oversub = oversub_tenths as f64 / 10.0;
        let (t_last, total, core_bw) = cross_rack_storm(rack_size, oversub, &flows);
        let floor = total as f64 / core_bw;
        prop_assert!(
            t_last >= floor * (1.0 - 1e-9),
            "storm finished at {t_last}s, beating the core floor {floor}s \
             (total {total} B over {core_bw} B/s)"
        );
    }
}
