//! Chaos gates at integration scale: a fault plan may stretch a job's
//! runtime, but it must never change what the job computes, and a faulted
//! run must stay bit-deterministic (same seed + same plan ⇒ same trace).

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;
use rmr_bench::chaos::{derive_plan, TwinTiming};
use rmr_core::cluster::{Cluster, NodeSpec};
use rmr_core::{run_job_with_faults, FaultEvent, FaultPlan, JobConf, JobResult, ShuffleKind};
use rmr_des::{Sim, SimDuration, SimTime};
use rmr_hdfs::HdfsConfig;
use rmr_net::FabricParams;
use rmr_workloads::{read_counts, teragen, terasort_spec, teravalidate, textgen, wordcount_spec};

fn chaos_cluster(sim: &Sim, workers: usize, kind: ShuffleKind) -> Cluster {
    let fabric = if kind.uses_rdma() {
        FabricParams::ib_verbs_qdr()
    } else {
        FabricParams::ipoib_qdr()
    };
    let mut spec = NodeSpec::westmere_compute();
    spec.page_cache = 256 << 20;
    Cluster::build(
        sim,
        fabric,
        &vec![spec; workers],
        HdfsConfig {
            block_size: 4 << 20,
            replication: 1,
            packet_size: 1 << 20,
        },
    )
}

fn chaos_conf(kind: ShuffleKind, reduces: usize) -> JobConf {
    let mut conf = JobConf::for_kind(kind);
    conf.num_reduces = reduces;
    conf.map_slots = 2;
    conf.reduce_slots = 2;
    conf.shuffle_buffer = 32 << 20;
    conf.io_sort_buffer = 16 << 20;
    conf.prefetch_cache_bytes = 64 << 20;
    conf.osu_packet_bytes = 256 << 10;
    conf.hadoop_a_kv_per_packet = 2_000;
    conf
}

/// The output facts a fault plan must not be able to change.
#[derive(Debug, Clone, PartialEq)]
struct OutputFacts {
    maps: usize,
    reduces: usize,
    output_bytes: u64,
    per_reduce_output: Vec<u64>,
}

impl OutputFacts {
    fn of(res: &JobResult) -> OutputFacts {
        OutputFacts {
            maps: res.maps,
            reduces: res.reduces,
            output_bytes: res.output_bytes,
            per_reduce_output: res.reduce_stats.iter().map(|s| s.output_bytes).collect(),
        }
    }
}

/// Runs one real-data TeraSort under `plan`. Returns the job result, the
/// teravalidate record count, and the sim trace hash.
fn terasort_run(
    seed: u64,
    workers: usize,
    kind: ShuffleKind,
    plan: &FaultPlan,
) -> (JobResult, u64, u64) {
    let sim = Sim::new(seed);
    let cluster = chaos_cluster(&sim, workers, kind);
    let reduces = workers.min(4);
    let conf = chaos_conf(kind, reduces);
    let out = Rc::new(RefCell::new(None));
    let out2 = Rc::clone(&out);
    let plan = plan.clone();
    sim.spawn(async move {
        let expected = teragen(&cluster, "/in", 12 << 20, true).await;
        let res = run_job_with_faults(&cluster, conf, terasort_spec("/in", "/out"), &plan).await;
        let report = teravalidate(&cluster, "/out", reduces, expected)
            .await
            .expect("faulted TeraSort output failed validation");
        *out2.borrow_mut() = Some((res, report.records));
    })
    .detach();
    sim.run();
    let (res, records) = out.borrow_mut().take().expect("job hung under faults");
    (res, records, sim.trace_hash())
}

/// Kill two of eight nodes mid-map-wave (with restarts). The sorted output
/// must validate with the fault-free record count, reducer-for-reducer byte
/// totals must match the fault-free twin, and running the same faulted sim
/// twice must produce the identical trace hash.
#[test]
fn terasort_survives_double_kill_mid_map_wave() {
    let kind = ShuffleKind::OsuIb;
    let (twin, expected_records, _) = terasort_run(0xC0FFEE, 8, kind, &FaultPlan::none());
    let map_end = twin.map_phase_end_s;
    assert!(map_end > twin.start_s, "twin never ran a map wave");
    let kill = |tt_idx: usize, frac: f64, back_s: f64| FaultEvent::Crash {
        tt_idx,
        at: SimTime::from_nanos(((twin.start_s + frac * (map_end - twin.start_s)) * 1e9) as u64),
        restart_after: Some(SimDuration::from_secs_f64(back_s)),
    };
    let plan = FaultPlan::none()
        .with(kill(1, 0.5, 6.0))
        .with(kill(5, 0.6, 9.0));

    let (res_a, records_a, trace_a) = terasort_run(0xC0FFEE, 8, kind, &plan);
    let (res_b, records_b, trace_b) = terasort_run(0xC0FFEE, 8, kind, &plan);

    assert_eq!(records_a, expected_records, "records lost under kills");
    assert_eq!(
        OutputFacts::of(&res_a),
        OutputFacts::of(&twin),
        "faulted output diverged from the fault-free twin"
    );
    assert_eq!(trace_a, trace_b, "faulted run is not deterministic");
    assert_eq!(records_a, records_b);
    assert_eq!(OutputFacts::of(&res_a), OutputFacts::of(&res_b));
    assert!(
        res_a.end_s >= twin.end_s,
        "losing two nodes cannot speed the job up"
    );
}

/// WordCount under a kill+restart: every (word, count) pair must match the
/// fault-free run exactly.
#[test]
fn wordcount_counts_survive_node_kill() {
    let kind = ShuffleKind::HadoopA;
    let run = |plan: &FaultPlan| {
        let sim = Sim::new(0xBEEF);
        let cluster = chaos_cluster(&sim, 6, kind);
        let reduces = 3;
        let conf = chaos_conf(kind, reduces);
        let out = Rc::new(RefCell::new(None));
        let out2 = Rc::clone(&out);
        let plan = plan.clone();
        sim.spawn(async move {
            textgen(&cluster, "/text", 60_000, 12).await;
            let res =
                run_job_with_faults(&cluster, conf, wordcount_spec("/text", "/wc"), &plan).await;
            let counts = read_counts(&cluster, "/wc", reduces)
                .await
                .expect("unreadable WordCount output");
            *out2.borrow_mut() = Some((res, counts));
        })
        .detach();
        sim.run();
        let got = out.borrow_mut().take();
        got.expect("job hung")
    };

    let (twin, clean_counts) = run(&FaultPlan::none());
    let at = twin.start_s + 0.5 * (twin.end_s - twin.start_s);
    let plan = FaultPlan::none().with(FaultEvent::Crash {
        tt_idx: 2,
        at: SimTime::from_nanos((at * 1e9) as u64),
        restart_after: Some(SimDuration::from_secs_f64(5.0)),
    });
    let (faulted, fault_counts) = run(&plan);

    assert!(!clean_counts.is_empty(), "twin produced no counts");
    assert_eq!(fault_counts, clean_counts, "word counts changed under kill");
    assert_eq!(faulted.maps, twin.maps);
    assert_eq!(faulted.reduces, twin.reduces);
}

/// Runs one synthetic TeraSort and returns (result, trace hash).
fn synthetic_run(
    seed: u64,
    workers: usize,
    kind: ShuffleKind,
    plan: &FaultPlan,
) -> (JobResult, u64) {
    let sim = Sim::new(seed);
    let cluster = chaos_cluster(&sim, workers, kind);
    let conf = chaos_conf(kind, workers.min(4));
    let out = Rc::new(RefCell::new(None));
    let out2 = Rc::clone(&out);
    let plan = plan.clone();
    sim.spawn(async move {
        teragen(&cluster, "/in", 32 << 20, false).await;
        let res = run_job_with_faults(&cluster, conf, terasort_spec("/in", "/out"), &plan).await;
        *out2.borrow_mut() = Some(res);
    })
    .detach();
    sim.run();
    let res = out
        .borrow_mut()
        .take()
        .expect("synthetic job hung under faults");
    (res, sim.trace_hash())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seed-derived fault plans (1–3 crashes with restarts, degrade
    /// and partition windows) on 8–16 node clusters across all three
    /// engines: output facts must equal the fault-free twin, and the
    /// faulted run must be double-run deterministic.
    #[test]
    fn random_fault_plans_never_change_output(
        workers in 8usize..=16,
        plan_seed in 0u64..1_000_000,
        kind_sel in 0u8..3,
    ) {
        let kind = match kind_sel {
            0 => ShuffleKind::Vanilla,
            1 => ShuffleKind::HadoopA,
            _ => ShuffleKind::OsuIb,
        };
        let sim_seed = 0x5EED ^ plan_seed;
        let (twin, _) = synthetic_run(sim_seed, workers, kind, &FaultPlan::none());
        let timing = TwinTiming {
            submit_s: twin.start_s,
            map_end_s: twin.map_phase_end_s,
            end_s: twin.end_s,
        };
        let plan = derive_plan(plan_seed, workers, &timing);
        prop_assert!(!plan.is_empty(), "derive_plan produced no faults");

        let (res_a, trace_a) = synthetic_run(sim_seed, workers, kind, &plan);
        let (res_b, trace_b) = synthetic_run(sim_seed, workers, kind, &plan);

        prop_assert_eq!(
            OutputFacts::of(&res_a),
            OutputFacts::of(&twin),
            "plan {} changed output on {:?}/{} workers",
            plan_seed, kind, workers
        );
        prop_assert_eq!(trace_a, trace_b, "faulted run not deterministic");
        prop_assert_eq!(OutputFacts::of(&res_a), OutputFacts::of(&res_b));
    }
}
